"""Synchronous client for the analysis daemon.

One persistent connection per :class:`ServiceClient`; every public call
is one request/reply round trip over the length-prefixed JSON protocol.
The client is what ``repro client``/``repro ping`` shell out to and what
the service load benchmark drives from its worker threads (each thread
owns its own client — a connection is not shareable across threads).

    >>> from repro.service import ServiceClient
    >>> with ServiceClient(unix_path="/tmp/repro.sock") as c:
    ...     c.ping()["version"]
    ...     c.parallelize(["for (i=0;i<n;i++) a[i]=b[i]+1;"])
"""

from __future__ import annotations

import socket
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.service import protocol

#: default connect/IO timeout; generous because a cold paper-scale
#: analysis behind a saturated queue can legitimately take seconds
DEFAULT_TIMEOUT_S = 120.0


class ServiceError(RuntimeError):
    """The daemon answered with a non-ok status.

    ``reply`` carries the full response object, so callers can branch on
    ``reply["status"]`` (``overloaded``, ``timeout``, ``degraded``, ...)
    and ``reply.get("code")`` without string-matching the message.
    """

    def __init__(self, reply: Dict[str, Any]):
        self.reply = reply
        super().__init__(
            f"service replied {reply.get('status')!r}"
            + (f" ({reply.get('code')})" if reply.get("code") else "")
            + (f": {reply.get('error')}" if reply.get("error") else "")
        )


class ServiceClient:
    """Blocking client over TCP (``host``/``port``) or a Unix socket."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        unix_path: Optional[str] = None,
        timeout_s: float = DEFAULT_TIMEOUT_S,
    ):
        if port is None and unix_path is None:
            raise ValueError("need a TCP port or a unix_path")
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.timeout_s = timeout_s
        self._sock: Optional[socket.socket] = None

    # -- connection management --------------------------------------------

    def connect(self) -> "ServiceClient":
        if self._sock is not None:
            return self
        if self.unix_path:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout_s)
            sock.connect(self.unix_path)
        else:
            sock = socket.create_connection(
                (self.host, int(self.port)), timeout=self.timeout_s
            )
        self._sock = sock
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- raw round trip ----------------------------------------------------

    def request(self, obj: Dict[str, Any], check: bool = True) -> Dict[str, Any]:
        """Send one request, return the reply object.

        ``check=True`` raises :class:`ServiceError` on any non-``ok``
        status (including ``overloaded``/``timeout`` backpressure
        replies); ``check=False`` returns them for the caller to branch
        on — what the load benchmark uses to count 503s.
        """
        self.connect()
        assert self._sock is not None
        try:
            protocol.send_frame(self._sock, obj)
            reply = protocol.recv_frame(self._sock)
        except (OSError, protocol.ProtocolError):
            # one reconnect: the daemon may have restarted between calls
            self.close()
            self.connect()
            assert self._sock is not None
            protocol.send_frame(self._sock, obj)
            reply = protocol.recv_frame(self._sock)
        if check and reply.get("status") != "ok":
            raise ServiceError(reply)
        return reply

    # -- typed helpers -----------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self.request({"op": "ping"})

    def metrics(self) -> Dict[str, Any]:
        return self.request({"op": "metrics"})["metrics"]

    def shutdown_server(self) -> Dict[str, Any]:
        return self.request({"op": "shutdown"})

    @staticmethod
    def _programs(sources: Union[str, Sequence[Union[str, Dict[str, str]]]]) -> List[Dict[str, str]]:
        if isinstance(sources, str):
            sources = [sources]
        out = []
        for i, s in enumerate(sources):
            if isinstance(s, dict):
                out.append({"id": str(s.get("id", i)), "source": s["source"]})
            else:
                out.append({"id": str(i), "source": s})
        return out

    def analyze(
        self,
        sources: Union[str, Sequence[Union[str, Dict[str, str]]]],
        *,
        pipeline: str = "new",
        deadline_ms: Optional[float] = None,
        check: bool = True,
        **options: Any,
    ) -> Dict[str, Any]:
        req: Dict[str, Any] = {
            "op": "analyze",
            "programs": self._programs(sources),
            "pipeline": pipeline,
        }
        if deadline_ms is not None:
            req["deadline_ms"] = deadline_ms
        req.update(options)
        return self.request(req, check=check)

    def parallelize(
        self,
        sources: Union[str, Sequence[Union[str, Dict[str, str]]]],
        *,
        pipeline: str = "new",
        deadline_ms: Optional[float] = None,
        schedule: Optional[str] = None,
        chunk: Optional[int] = None,
        check: bool = True,
        **options: Any,
    ) -> Dict[str, Any]:
        req: Dict[str, Any] = {
            "op": "parallelize",
            "programs": self._programs(sources),
            "pipeline": pipeline,
        }
        if deadline_ms is not None:
            req["deadline_ms"] = deadline_ms
        if schedule is not None:
            req["schedule"] = schedule
        if chunk is not None:
            req["chunk"] = chunk
        req.update(options)
        return self.request(req, check=check)

    def execute(
        self,
        benchmark: str,
        *,
        backend: str = "auto",
        scale: str = "small",
        repeats: int = 1,
        check: bool = True,
        **options: Any,
    ) -> Dict[str, Any]:
        req: Dict[str, Any] = {
            "op": "execute",
            "benchmark": benchmark,
            "backend": backend,
            "scale": scale,
            "repeats": repeats,
        }
        req.update(options)
        return self.request(req, check=check)
