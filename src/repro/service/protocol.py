"""Length-prefixed JSON wire protocol for the analysis daemon.

Framing: every message is a 4-byte big-endian unsigned length followed
by that many bytes of UTF-8 JSON.  One object per frame, request and
reply alike, over TCP or a Unix-domain socket.  The format is
deliberately transport-boring: any language can speak it with ten lines
of code, and `netcat`-level debugging stays possible.

Requests are JSON objects with an ``op`` field::

    {"op": "ping"}
    {"op": "analyze",     "programs": [{"id": "k0", "source": "..."}],
     "pipeline": "new", "deadline_ms": 250}
    {"op": "parallelize", "source": "...", "schedule": "static"}
    {"op": "execute",     "benchmark": "AMGmk", "backend": "auto",
     "scale": "small", "repeats": 1}
    {"op": "metrics"}
    {"op": "shutdown"}

``analyze``/``parallelize`` accept either a single ``source`` string or
a ``programs`` batch; batch members are deduplicated by source digest
server-side.  Replies always carry ``status``: ``ok``, or an error
status (``overloaded``, ``timeout``, ``degraded``, ``bad-request``,
``error``) plus a ``code`` mirroring HTTP semantics (503, 504, ...) and
an ``error`` message.  See ``docs/service.md`` for the full field
reference.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any, Dict, Optional

#: frame size cap — a malformed or hostile length prefix must not make
#: the server (or client) attempt a multi-gigabyte allocation
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LEN = struct.Struct(">I")


class ProtocolError(Exception):
    """Malformed frame: bad length prefix, oversized frame, or non-JSON."""


def encode_frame(obj: Dict[str, Any]) -> bytes:
    """Serialize one message to its on-wire bytes."""
    body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _LEN.pack(len(body)) + body


def decode_body(body: bytes) -> Dict[str, Any]:
    try:
        obj = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("frame must be a JSON object")
    return obj


# ---------------------------------------------------------------------------
# asyncio side (server)
# ---------------------------------------------------------------------------


async def read_frame_async(reader: "asyncio.StreamReader") -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on clean EOF before a length prefix."""
    try:
        header = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between frames
        raise ProtocolError("connection closed mid-length-prefix") from exc
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return decode_body(body)


async def write_frame_async(writer: "asyncio.StreamWriter", obj: Dict[str, Any]) -> None:
    writer.write(encode_frame(obj))
    await writer.drain()


# ---------------------------------------------------------------------------
# blocking-socket side (client)
# ---------------------------------------------------------------------------


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    while n:
        chunk = sock.recv(min(n, 1 << 20))
        if not chunk:
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, obj: Dict[str, Any]) -> None:
    sock.sendall(encode_frame(obj))


def recv_frame(sock: socket.socket) -> Dict[str, Any]:
    header = _recv_exact(sock, _LEN.size)
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    return decode_body(_recv_exact(sock, length))
