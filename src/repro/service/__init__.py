"""Analysis-as-a-service: a concurrent daemon over the cache tiers.

The pipeline's latency story — ~200us warm whole-program hits, per-nest
incremental reuse for edited sources, a shared on-disk tier, and a
persistent worker pool for execution — only pays off for service-style
traffic if callers stop paying process startup on every request.  This
package is the long-running front end:

* :mod:`repro.service.protocol` — the length-prefixed JSON wire format;
* :mod:`repro.service.server` — the asyncio daemon (``repro serve``):
  bounded admission queue with fast-fail backpressure, batch submission
  deduplicated by source digest, per-request deadlines via
  :class:`repro.budget.AnalysisBudget`, a circuit breaker degrading
  execute requests under fault storms, and a ``metrics`` op exporting
  perfstats/workmeter counters plus p50/p99 latency histograms;
* :mod:`repro.service.client` — the synchronous client library behind
  ``repro client`` and ``repro ping``;
* :mod:`repro.service.metrics` — service-side counters and histograms.

See ``docs/service.md`` for the protocol and deployment reference.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.protocol import ProtocolError

__all__ = ["ServiceClient", "ServiceError", "ProtocolError"]
