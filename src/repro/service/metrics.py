"""Service-side metrics: request counters and p50/p99 latency histograms.

The daemon's observability layer, deliberately tiny: log-spaced latency
buckets (no per-request allocation beyond one list index bump), plain
int counters behind one lock, and a ``snapshot()`` that folds in the
process-wide :mod:`repro.ir.perfstats` counters and the
:mod:`repro.runtime.workmeter` digest so one ``metrics`` request answers
"what is the service doing and why" — queue depth, per-tier hit rates,
per-op latency percentiles — without a second round trip.
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, List, Optional

#: histogram bucket upper bounds in seconds: log-spaced 10us .. 60s.
#: Percentiles are reported as the bucket's upper bound — a conservative
#: (never flattering) estimate with <= 26% relative error per bucket.
_BUCKET_BOUNDS_S: List[float] = []
_b = 10e-6
while _b < 60.0:
    _BUCKET_BOUNDS_S.append(_b)
    _b *= 1.26
_BUCKET_BOUNDS_S.append(float("inf"))


class LatencyHistogram:
    """Fixed-bucket latency histogram with percentile extraction."""

    __slots__ = ("_counts", "_total", "_sum_s", "_max_s")

    def __init__(self) -> None:
        self._counts = [0] * len(_BUCKET_BOUNDS_S)
        self._total = 0
        self._sum_s = 0.0
        self._max_s = 0.0

    def record(self, seconds: float) -> None:
        i = bisect.bisect_left(_BUCKET_BOUNDS_S, seconds)
        self._counts[i] += 1
        self._total += 1
        self._sum_s += seconds
        if seconds > self._max_s:
            self._max_s = seconds

    @property
    def count(self) -> int:
        return self._total

    def percentile(self, p: float) -> Optional[float]:
        """Latency (seconds) at percentile ``p`` in [0, 100]; None if empty.

        Returns the upper bound of the bucket containing the p-th sample
        (the top bucket reports the observed max instead of infinity).
        """
        if not self._total:
            return None
        rank = max(1, int(round(p / 100.0 * self._total)))
        seen = 0
        for i, n in enumerate(self._counts):
            seen += n
            if seen >= rank:
                bound = _BUCKET_BOUNDS_S[i]
                return self._max_s if bound == float("inf") else bound
        return self._max_s

    def snapshot(self) -> Dict[str, float]:
        out: Dict[str, float] = {"count": float(self._total)}
        if self._total:
            out["mean_ms"] = 1e3 * self._sum_s / self._total
            out["max_ms"] = 1e3 * self._max_s
            for p, name in ((50.0, "p50_ms"), (90.0, "p90_ms"), (99.0, "p99_ms")):
                v = self.percentile(p)
                if v is not None:
                    out[name] = 1e3 * v
        return {k: round(v, 4) for k, v in out.items()}


class ServiceStats:
    """Thread-safe counter/histogram registry for one daemon instance."""

    _COUNTERS = (
        "requests_total",
        "programs_total",
        "batch_dedup_hits",
        "overload_rejections",
        "deadline_misses",
        "degraded_executes",
        "protocol_errors",
        "internal_errors",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {name: 0 for name in self._COUNTERS}
        self._per_op: Dict[str, int] = {}
        self._latency: Dict[str, LatencyHistogram] = {}

    def bump(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + n

    def count_request(self, op: str) -> None:
        with self._lock:
            self._counts["requests_total"] += 1
            self._per_op[op] = self._per_op.get(op, 0) + 1

    def record_latency(self, op: str, seconds: float) -> None:
        with self._lock:
            hist = self._latency.get(op)
            if hist is None:
                hist = self._latency[op] = LatencyHistogram()
            hist.record(seconds)

    def get(self, name: str) -> int:
        with self._lock:
            return self._counts.get(name, 0)

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "counters": dict(self._counts),
                "requests_by_op": dict(self._per_op),
                "latency": {op: h.snapshot() for op, h in self._latency.items()},
            }


def full_snapshot(stats: ServiceStats, queue_depth: int, queue_capacity: int) -> Dict[str, object]:
    """The ``metrics`` reply body: service + perfstats + workmeter state."""
    from repro.ir import perfstats
    from repro.runtime import workmeter

    snap = stats.snapshot()
    snap["queue"] = {"depth": queue_depth, "capacity": queue_capacity}
    snap["perfstats"] = perfstats.snapshot()
    snap["workmeter"] = workmeter.summary()
    c = perfstats.STATS
    tiers = {}
    for layer in ("analysis", "parallelize", "nest", "nestdec", "parse"):
        h = getattr(c, f"{layer}_hits")
        m = getattr(c, f"{layer}_misses")
        tiers[layer] = {
            "hits": h,
            "misses": m,
            "hit_rate": round(h / (h + m), 4) if (h + m) else None,
        }
    tiers["disk"] = {
        "hits": c.disk_hits,
        "writes": c.disk_writes,
        "race_retries": c.disk_race_retries,
    }
    snap["cache_tiers"] = tiers
    return snap
