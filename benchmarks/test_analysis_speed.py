"""Benchmark: compile-time cost of the analysis itself.

The paper's technique is compile-time only — its selling point over
inspector/executor and speculation is zero run-time overhead.  These
benchmarks measure what the compile-time cost actually is, per pipeline
stage, on the three worked examples.
"""

import pytest

from repro.analysis import AnalysisConfig, analyze_program
from repro.analysis.loopinfo import find_loop_nests
from repro.analysis.normalize import normalize_program
from repro.analysis.phase1 import run_phase1
from repro.benchmarks import get_benchmark
from repro.lang.cparser import parse_program
from repro.parallelizer import parallelize

APPS = ["AMGmk", "SDDMM", "UA(transf)", "CHOLMOD-Supernodal"]


@pytest.mark.parametrize("name", APPS)
def test_parse_speed(benchmark, name):
    src = get_benchmark(name).source
    prog = benchmark(parse_program, src)
    assert prog.stmts


@pytest.mark.parametrize("name", APPS)
def test_phase1_speed(benchmark, name):
    src = get_benchmark(name).source
    prog = normalize_program(parse_program(src))
    nests = [n for n in find_loop_nests(prog) if n.eligible]

    def run():
        return [run_phase1(n, {}) for n in nests]

    out = benchmark(run)
    assert out


@pytest.mark.parametrize("name", APPS)
def test_full_analysis_speed(benchmark, name):
    src = get_benchmark(name).source
    res = benchmark(analyze_program, src, AnalysisConfig.new_algorithm())
    assert res.nests


@pytest.mark.parametrize("name", APPS)
def test_full_parallelization_speed(benchmark, name):
    src = get_benchmark(name).source
    res = benchmark(parallelize, src, AnalysisConfig.new_algorithm())
    assert res.decisions


@pytest.mark.parametrize("name", APPS)
def test_certified_parallelization_speed(benchmark, name):
    """Production path: certificate emission + independent checker on,
    IR linter off (its default outside the test suite)."""
    import dataclasses

    config = dataclasses.replace(
        AnalysisConfig.new_algorithm(), verify_ir=False, verify_certificates=True
    )
    src = get_benchmark(name).source
    res = benchmark(parallelize, src, config)
    assert res.decisions
    assert all(
        d.certificate_verified for d in res.decisions.values() if d.parallel
    )


@pytest.mark.parametrize("name", ["AMGmk", "UA(transf)"])
def test_certification_is_cold_path_only(name):
    """Guard: proof-carrying verdicts must not tax the warm path.

    Certificates are built and checked once, when the analysis runs; a
    result-cache hit replays the stored decisions.  The warm path with
    certification on must therefore stay within noise of certification
    off (PR 2 baselines: AMGmk ~199µs, UA(transf) ~1.05ms warm).  The
    bound is relative, with margin for timer jitter.
    """
    import dataclasses
    import statistics
    import time

    src = get_benchmark(name).source
    reps = 30

    def warm_median(config):
        parallelize(src, config)  # populate the cache
        samples = []
        for _ in range(reps):
            t0 = time.perf_counter()
            parallelize(src, config)
            samples.append(time.perf_counter() - t0)
        return statistics.median(samples)

    base = AnalysisConfig.new_algorithm()
    t_off = warm_median(
        dataclasses.replace(base, verify_ir=False, verify_certificates=False)
    )
    t_on = warm_median(
        dataclasses.replace(base, verify_ir=False, verify_certificates=True)
    )
    assert t_on <= t_off * 1.5 + 2e-4, (
        f"{name}: certified warm path {t_on * 1e6:.0f}µs vs "
        f"uncertified {t_off * 1e6:.0f}µs — certification leaked onto the warm path"
    )


@pytest.mark.parametrize("name", APPS)
def test_budgeted_analysis_speed(benchmark, name):
    """Same full analysis under a generous budget: every cooperative
    checkpoint is live (visible as budget checks in --stats/perfstats)
    but nothing trips, so this measures pure checkpoint overhead."""
    import dataclasses

    from repro.budget import AnalysisBudget

    generous = AnalysisBudget(
        max_expr_nodes=100_000,
        max_simplify_steps=10_000_000,
        max_phase_iters=10_000_000,
        deadline_ms=600_000.0,
    )
    config = dataclasses.replace(AnalysisConfig.new_algorithm(), budget=generous)
    src = get_benchmark(name).source
    res = benchmark(analyze_program, src, config)
    assert res.nests
    assert not res.diagnostics or all(not d.is_fault for d in res.diagnostics)
