"""Benchmark: regenerate Figure 14 (parallel with analysis vs serial)."""

from conftest import print_block

from repro.experiments.fig14 import fig14_cells, format_fig14


def test_fig14(benchmark):
    cells = benchmark(fig14_cells)
    assert all(c.improvement > 1.0 for c in cells)
    print_block("Figure 14 — parallel (with analysis) vs serial", format_fig14(cells))
