"""Benchmark: regenerate Figure 17 (12 benchmarks x 3 pipelines, 16 cores).

This is the paper's headline result: classical Cetus improves 6/12
benchmarks, +BaseAlgo 7/12, +NewAlgo 10/12 (83.33%)."""

from conftest import print_block

from repro.experiments.fig17 import fig17_cells, format_fig17, improved_counts


def test_fig17(benchmark):
    cells = benchmark(fig17_cells)
    counts = improved_counts(cells)
    assert counts["Cetus"] == 6
    assert counts["Cetus+BaseAlgo"] == 7
    assert counts["Cetus+NewAlgo"] == 10
    print_block("Figure 17 — pipeline comparison on 16 cores", format_fig17(cells))
