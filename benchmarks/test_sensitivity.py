"""Benchmark: cost-model sensitivity of the Figure-17 headline result."""

from conftest import print_block

from repro.experiments.sensitivity import format_sensitivity, sensitivity_cells


def test_sensitivity(benchmark):
    cells = benchmark(sensitivity_cells)
    for c in cells:
        assert c.counts["Cetus"] == 6
        assert c.counts["Cetus+BaseAlgo"] == 7
        assert c.counts["Cetus+NewAlgo"] == 10
    print_block("Sensitivity — Fig. 17 counts under model perturbation", format_sensitivity(cells))
