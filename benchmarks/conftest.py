"""Shared fixtures for the benchmark harness."""



def print_block(title: str, text: str) -> None:
    """Emit a figure/table reproduction block to the terminal."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{text}\n")
