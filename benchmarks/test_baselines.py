"""Benchmark: extension experiment — compile-time analysis vs the
run-time baselines of the paper's related work (inspector-executor,
LRPD speculation).  Reproduces §5's amortization argument: even a
simplified inspector needs the executor to run ~40-60 times to pay for
itself on these kernels, while the compile-time approach has no run-time
overhead at all."""

from conftest import print_block

from repro.experiments.baselines import baseline_cells, format_baselines


def test_baselines(benchmark):
    cells = benchmark(baseline_cells)
    for c in cells:
        assert c.t_compile_time <= c.t_inspector
        assert c.t_compile_time <= c.t_speculative
    print_block(
        "Extension — compile-time vs inspector-executor vs speculation",
        format_baselines(cells),
    )
