"""Benchmark: regenerate Table 1 (benchmarks, datasets, serial times).

Run with ``pytest benchmarks/ --benchmark-only``.  The benchmark measures
the cost of building every performance model (workload generation +
calibration); the table itself is printed for comparison with the paper.
"""

from conftest import print_block

from repro.experiments.table1 import format_table1, table1_rows


def test_table1(benchmark):
    rows = benchmark(table1_rows)
    assert len(rows) >= 20
    print_block("Table 1 — benchmarks, input datasets, serial times", format_table1())
