"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation disables one capability of the new algorithm and measures
the consequence on (a) how many subscript-array properties survive and
(b) the predicted 16-core performance of the three Experiment-1 apps.
"""

import dataclasses

import pytest
from conftest import print_block

from repro.analysis import AnalysisConfig
from repro.benchmarks import get_benchmark
from repro.parallelizer import parallelize
from repro.runtime.simulate import plan_from_decisions, simulate_app

ABLATIONS = {
    "full": AnalysisConfig.new_algorithm(),
    "no-intermittent": dataclasses.replace(AnalysisConfig.new_algorithm(), intermittent=False),
    "no-multidim": dataclasses.replace(AnalysisConfig.new_algorithm(), multidim=False),
    "base-only": AnalysisConfig.base_algorithm(),
}

APPS = ["AMGmk", "SDDMM", "UA(transf)"]


def run_ablation():
    rows = []
    for abl_name, cfg in ABLATIONS.items():
        for app in APPS:
            bench = get_benchmark(app)
            result = parallelize(bench.source, cfg)
            perf = bench.perf_model(bench.default_dataset)
            plan = plan_from_decisions(perf, result)
            t = simulate_app(perf, plan, 16)
            n_props = len(result.analysis.properties)
            rows.append((abl_name, app, n_props, perf.serial_time_target / t))
    return rows


def test_ablation(benchmark):
    rows = benchmark(run_ablation)
    table = {(a, b): (n, s) for a, b, n, s in rows}

    # intermittent monotonicity is what carries AMGmk and SDDMM
    assert table[("full", "AMGmk")][1] > 2.0
    assert table[("no-intermittent", "AMGmk")][1] < 1.0
    assert table[("no-intermittent", "SDDMM")][1] < 1.0
    # multi-dimensional monotonicity is what carries UA
    assert table[("full", "UA(transf)")][1] > 2.0
    assert table[("no-multidim", "UA(transf)")][1] < 1.0
    # but disabling multidim must NOT hurt AMGmk/SDDMM
    assert table[("no-multidim", "AMGmk")][1] == pytest.approx(table[("full", "AMGmk")][1])

    lines = [f"{'ablation':<16} {'app':<12} {'#props':>7} {'speedup@16':>11}"]
    for (a, b), (n, s) in table.items():
        lines.append(f"{a:<16} {b:<12} {n:>7} {s:>11.2f}")
    print_block("Ablation — capability knockouts of the new algorithm", "\n".join(lines))
