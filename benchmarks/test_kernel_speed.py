"""Benchmark: run-time cost of executing the kernels themselves.

Where ``test_analysis_speed.py`` tracks the *compile-time* cost of the
analysis, this suite tracks the *run-time* cost of the kernels the
analysis certifies: the tree-walking interpreter vs. the compiled
backend (NumPy-vectorized closures) vs. the compiled backend with the
shared-memory worker pool.

Scale is selected with ``REPRO_KERNEL_SCALE``:

* ``small`` (default) — each benchmark's ``small_env``; seconds total,
  suitable for every CI run;
* ``paper`` — the paper-scale ``exec_env`` inputs (AMGmk grid=40,
  UA class A, CG class A, ...); minutes of interpreter time, used to
  record ``BENCH_kernel_speed.json`` via ``run_speed.py --kernel``.

The compiled-parallel assertions only apply on multi-core runners
(``os.cpu_count() >= 4``): on fewer cores the pool's chunk dispatch
cannot beat the serial compiled path and the claim is vacuous.
"""

from __future__ import annotations

import math
import os

import pytest

from repro.experiments.harness import measure_backend_speedups

SCALE = os.environ.get("REPRO_KERNEL_SCALE", "small")
REPEATS = int(os.environ.get("REPRO_KERNEL_REPEATS", "1" if SCALE == "paper" else "3"))

#: benchmarks with a paper-scale exec_env and a certified-parallel loop
KERNEL_APPS = ["AMGmk", "UA(transf)", "CG", "SDDMM", "syrk", "IS"]

#: acceptance floors for the paper-scale compiled/interp speedup; the
#: masked/segmented/flattened tiers put every irregular kernel far above
#: these (measured 100-400x), so the floors catch tier regressions with
#: wide margin for interpreter-side machine variance
PAPER_MIN_SPEEDUP = {"AMGmk": 40.0, "UA(transf)": 15.0, "CG": 40.0, "SDDMM": 40.0}

#: ceiling on max/mean per-chunk wall time under work-aware chunking
IMBALANCE_MAX = 1.25

MULTICORE = (os.cpu_count() or 1) >= 4

_CACHE = {}


def _measure(name: str, backends: tuple):
    key = (name, backends)
    if key not in _CACHE:
        (_CACHE[key],) = measure_backend_speedups(
            [name], backends=backends, scale=SCALE, repeats=REPEATS
        )
    return _CACHE[key]


@pytest.mark.parametrize("name", KERNEL_APPS)
def test_compiled_backend_speed_and_parity(name):
    run = _measure(name, ("interp", "compiled"))
    assert run.outputs_match, f"{name}: compiled output diverged from interp"
    s = run.speedup("compiled")
    assert math.isfinite(s) and s > 0
    if SCALE == "paper" and name in PAPER_MIN_SPEEDUP:
        assert s >= PAPER_MIN_SPEEDUP[name], (
            f"{name}: compiled speedup {s:.1f}x below the "
            f"{PAPER_MIN_SPEEDUP[name]:.0f}x paper-scale floor "
            f"(interp {run.times['interp']:.3f}s, compiled {run.times['compiled']:.3f}s)"
        )


@pytest.mark.skipif(
    not MULTICORE or SCALE != "paper",
    reason="compiled-parallel claim needs >= 4 cores and paper-scale inputs",
)
def test_compiled_parallel_beats_serial_compiled_on_multicore():
    """On a multi-core runner at paper scale the worker pool must win on
    at least three certified-parallel kernels (>= 1.5x over serial
    compiled); at small scale dispatch overhead dominates and the claim
    is vacuous."""
    wins = []
    for name in KERNEL_APPS:
        run = _measure(name, ("interp", "compiled", "compiled-parallel"))
        assert run.outputs_match, f"{name}: a backend diverged"
        s = run.speedup("compiled-parallel", over="compiled")
        if math.isfinite(s) and s >= 1.5:
            wins.append((name, s))
    assert len(wins) >= 3, (
        f"compiled-parallel beat serial compiled by >=1.5x on only "
        f"{len(wins)} kernels: {wins}"
    )


@pytest.mark.skipif(
    not MULTICORE or SCALE != "paper",
    reason="load-balance claim needs >= 4 cores and paper-scale inputs",
)
@pytest.mark.parametrize("name", ["SDDMM", "UA(transf)"])
def test_work_aware_chunking_keeps_load_balanced(name):
    """The inspector-weighted chunk bounds must keep per-chunk wall times
    within IMBALANCE_MAX of the mean on the skew-heavy kernels; uniform
    chunking over a power-law row distribution blows well past it."""
    run = _measure(name, ("interp", "compiled", "compiled-parallel"))
    assert run.chunk_imbalance, f"{name}: no per-chunk timings were recorded"
    worst = run.worst_imbalance()
    assert worst <= IMBALANCE_MAX, (
        f"{name}: max/mean chunk time {worst:.2f} exceeds {IMBALANCE_MAX} "
        f"(per-loop: {run.chunk_imbalance})"
    )


def test_compiled_parallel_is_correct_even_on_few_cores():
    """Correctness of the pool path is core-count independent: even where
    the speedup claim is vacuous, outputs must match the interpreter."""
    run = _measure("AMGmk", ("interp", "compiled", "compiled-parallel"))
    assert run.outputs_match
    # the chunk-time registry must be populated regardless of core count
    assert run.chunk_imbalance
    assert all(v >= 1.0 for v in run.chunk_imbalance.values())
