#!/usr/bin/env python
"""Run the compile-time speed benchmarks and record the results.

Runs ``benchmarks/test_analysis_speed.py`` under pytest-benchmark and
writes the machine-readable results to ``BENCH_analysis_speed.json`` at
the repository root, so successive PRs can track the analysis-cost
trajectory (the paper's core claim is that this analysis is cheap enough
to be compile-time only).

Usage::

    python benchmarks/run_speed.py                 # full speed suite
    python benchmarks/run_speed.py -k full_parallelization
    python benchmarks/run_speed.py --budget        # budgeted-analysis smoke
    REPRO_BENCH_OUT=custom.json python benchmarks/run_speed.py

``--budget`` selects only the budgeted-analysis benchmarks (analysis with
every cooperative checkpoint live under a generous budget), a quick smoke
that budget checkpoints show up in perfstats without perturbing the warm
path.  Extra arguments are forwarded to pytest.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent


def main(argv: list = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if "--budget" in argv:
        argv.remove("--budget")
        argv += ["-k", "budgeted"]
    out = ROOT / os.environ.get("REPRO_BENCH_OUT", "BENCH_analysis_speed.json")
    env = dict(os.environ)
    src = str(ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        str(ROOT / "benchmarks" / "test_analysis_speed.py"),
        "-q",
        f"--benchmark-json={out}",
        *argv,
    ]
    rc = subprocess.call(cmd, env=env, cwd=str(ROOT))
    if rc == 0:
        print(f"benchmark results written to {out}")
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
