#!/usr/bin/env python
"""Run the speed benchmarks and record the results.

Default mode runs ``benchmarks/test_analysis_speed.py`` under
pytest-benchmark and writes the machine-readable results to
``BENCH_analysis_speed.json`` at the repository root, so successive PRs
can track the analysis-cost trajectory (the paper's core claim is that
this analysis is cheap enough to be compile-time only).

``--kernel`` switches to the kernel-*execution* benchmark: it measures
each registered paper-scale kernel under the interpreter, the compiled
backend, and the compiled-parallel backend (per-chunk wall times and
their max/mean imbalance included), writes ``BENCH_kernel_speed.json``,
and **fails if any compiled/interp speedup ratio regressed by more than
25%** against the committed baseline (ratios are machine-relative, so
the check is meaningful across runners).  On >= 4 cores it additionally
fails if work-aware chunking leaves the skew-heavy kernels with a chunk
imbalance above ``IMBALANCE_MAX``.

Usage::

    python benchmarks/run_speed.py                 # full analysis-speed suite
    python benchmarks/run_speed.py -k full_parallelization
    python benchmarks/run_speed.py --budget        # budgeted-analysis smoke
    python benchmarks/run_speed.py --kernel        # kernel execution, paper scale
    python benchmarks/run_speed.py --kernel --scale small --no-check
    REPRO_BENCH_OUT=custom.json python benchmarks/run_speed.py

``--budget`` selects only the budgeted-analysis benchmarks (analysis with
every cooperative checkpoint live under a generous budget), a quick smoke
that budget checkpoints show up in perfstats without perturbing the warm
path.  Extra arguments are forwarded to pytest (analysis mode only).
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: kernels measured by --kernel: paper-scale exec_env + certified loops
KERNEL_APPS = ["AMGmk", "UA(transf)", "CG", "SDDMM", "syrk", "IS"]

#: a speedup ratio below this fraction of the committed baseline fails
REGRESSION_FLOOR = 0.75

#: load-balance gate (>= 4 cores only): worst max/mean per-chunk wall
#: time on the skew-heavy kernels under work-aware chunking
IMBALANCE_MAX = 1.25
IMBALANCE_APPS = ("SDDMM", "UA(transf)")


def kernel_main(argv: list) -> int:
    """``--kernel`` mode: measure, record, and gate kernel execution speed."""
    import argparse

    ap = argparse.ArgumentParser(prog="run_speed.py --kernel")
    ap.add_argument("--scale", choices=("paper", "small"),
                    default=os.environ.get("REPRO_KERNEL_SCALE", "paper"))
    ap.add_argument("--repeats", type=int, default=1)
    ap.add_argument("--threads", type=int, default=None)
    ap.add_argument("--benchmarks", nargs="*", default=None)
    ap.add_argument("--no-check", action="store_true",
                    help="record results without the baseline regression gate")
    args = ap.parse_args(argv)

    sys.path.insert(0, str(ROOT / "src"))
    from repro.experiments.harness import measure_backend_speedups

    # compiled-parallel is always recorded: on one core the column shows
    # the pool's dispatch overhead honestly; the >=1.5x-over-compiled and
    # load-balance claims are only *gated* on >= 4 cores
    backends = ["interp", "compiled", "compiled-parallel"]
    names = args.benchmarks or KERNEL_APPS
    print(f"measuring {len(names)} kernels at scale={args.scale} "
          f"backends={backends} (repeats={args.repeats}) ...")
    runs = measure_backend_speedups(
        names, backends=tuple(backends), scale=args.scale,
        repeats=args.repeats, threads=args.threads,
    )

    out = ROOT / os.environ.get("REPRO_BENCH_OUT", "BENCH_kernel_speed.json")
    baseline_path = ROOT / "BENCH_kernel_speed.json"
    baseline = None
    if baseline_path.exists():
        try:
            baseline = json.loads(baseline_path.read_text())
        except (OSError, json.JSONDecodeError):
            baseline = None

    import numpy

    payload = {
        "meta": {
            "scale": args.scale,
            "repeats": args.repeats,
            "cpu_count": os.cpu_count(),
            "backends": backends,
            "python": sys.version.split()[0],
            "numpy": numpy.__version__,
        },
        "results": [
            {
                "benchmark": r.benchmark,
                "times_s": {b: round(t, 6) for b, t in r.times.items()},
                "speedups_vs_interp": {
                    b: round(r.speedup(b), 3) for b in backends if b != "interp"
                },
                "outputs_match": r.outputs_match,
                "chunk_imbalance": {
                    k: round(v, 3) for k, v in sorted(r.chunk_imbalance.items())
                },
            }
            for r in runs
        ],
    }
    out.write_text(json.dumps(payload, indent=2) + "\n")

    width = max(len(r.benchmark) for r in runs)
    for r in runs:
        cells = "  ".join(f"{b}={r.times[b]:.3f}s" for b in backends if b in r.times)
        print(f"  {r.benchmark:<{width}}  {cells}  "
              f"compiled {r.speedup('compiled'):.1f}x  "
              f"match={r.outputs_match}")
    print(f"kernel benchmark results written to {out}")

    failures = [f"{r.benchmark}: outputs diverged" for r in runs if not r.outputs_match]
    if not args.no_check and (os.cpu_count() or 1) >= 4:
        for r in runs:
            if r.benchmark not in IMBALANCE_APPS or not r.chunk_imbalance:
                continue
            worst = r.worst_imbalance()
            if worst > IMBALANCE_MAX:
                failures.append(
                    f"{r.benchmark}: max/mean chunk time {worst:.2f} exceeds "
                    f"{IMBALANCE_MAX} (per-loop: {r.chunk_imbalance})"
                )
    if not args.no_check and baseline and baseline.get("meta", {}).get("scale") == args.scale:
        base = {e["benchmark"]: e for e in baseline.get("results", [])}
        for r in runs:
            ref = base.get(r.benchmark)
            if not ref:
                continue
            old = ref.get("speedups_vs_interp", {}).get("compiled")
            new = r.speedup("compiled")
            if old and new < REGRESSION_FLOOR * old:
                failures.append(
                    f"{r.benchmark}: compiled speedup {new:.1f}x is >25% below "
                    f"the committed baseline {old:.1f}x"
                )
    elif not args.no_check and baseline is None:
        print("no committed baseline found; skipping regression gate")
    for msg in failures:
        print(f"REGRESSION: {msg}", file=sys.stderr)
    return 1 if failures else 0


def main(argv: list = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if "--kernel" in argv:
        argv.remove("--kernel")
        return kernel_main(argv)
    if "--budget" in argv:
        argv.remove("--budget")
        argv += ["-k", "budgeted"]
    out = ROOT / os.environ.get("REPRO_BENCH_OUT", "BENCH_analysis_speed.json")
    env = dict(os.environ)
    src = str(ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        str(ROOT / "benchmarks" / "test_analysis_speed.py"),
        "-q",
        f"--benchmark-json={out}",
        *argv,
    ]
    rc = subprocess.call(cmd, env=env, cwd=str(ROOT))
    if rc == 0:
        print(f"benchmark results written to {out}")
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
