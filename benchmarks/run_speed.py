#!/usr/bin/env python
"""Run the speed benchmarks and record the results.

Default mode runs ``benchmarks/test_analysis_speed.py`` under
pytest-benchmark and writes the machine-readable results to
``BENCH_analysis_speed.json`` at the repository root, so successive PRs
can track the analysis-cost trajectory (the paper's core claim is that
this analysis is cheap enough to be compile-time only).

``--kernel`` switches to the kernel-*execution* benchmark: it measures
each registered paper-scale kernel under the interpreter, the compiled
backend, and the compiled-parallel backend (per-chunk wall times and
their max/mean imbalance included), writes ``BENCH_kernel_speed.json``,
and **fails if any compiled/interp speedup ratio regressed by more than
25%** against the committed baseline (ratios are machine-relative, so
the check is meaningful across runners).  On >= 4 cores it additionally
fails if work-aware chunking leaves the skew-heavy kernels with a chunk
imbalance above ``IMBALANCE_MAX``.

Usage::

    python benchmarks/run_speed.py                 # full analysis-speed suite
    python benchmarks/run_speed.py -k full_parallelization
    python benchmarks/run_speed.py --budget        # budgeted-analysis smoke
    python benchmarks/run_speed.py --kernel        # kernel execution, paper scale
    python benchmarks/run_speed.py --kernel --scale small --no-check
    python benchmarks/run_speed.py --incremental   # edit-one-nest cold vs warm
    python benchmarks/run_speed.py --service       # daemon load test, p50/p99
    REPRO_BENCH_OUT=custom.json python benchmarks/run_speed.py

``--service`` load-tests the analysis daemon: it starts ``repro serve``
on a Unix socket, drives it from many concurrent clients with cold,
warm, and edited-nest traffic mixes, records client-observed p50/p99
latency and throughput per mix to ``BENCH_service.json``, proves batch
dedup via the daemon's own counters, and fails if warm-hit p99 exceeds
``REPRO_SERVICE_P99_MS`` (default 10 ms) or warm throughput regresses
below half the committed baseline.

``--budget`` selects only the budgeted-analysis benchmarks (analysis with
every cooperative checkpoint live under a generous budget), a quick smoke
that budget checkpoints show up in perfstats without perturbing the warm
path.  Extra arguments are forwarded to pytest (analysis mode only).
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: kernels measured by --kernel: paper-scale exec_env + certified loops
KERNEL_APPS = ["AMGmk", "UA(transf)", "CG", "SDDMM", "syrk", "IS"]

#: a speedup ratio below this fraction of the committed baseline fails
REGRESSION_FLOOR = 0.75

#: backend=auto must land within this factor of the best fixed backend,
#: plus an absolute floor absorbing the per-run planning cost — on a
#: millisecond-scale small-input kernel the cost-model walk alone is a
#: double-digit percentage, which is noise, not a wrong backend choice
AUTO_SLACK = 1.10
AUTO_ABS_SLACK_S = 2e-3

#: minimum best-of count for the millisecond-scale compiled-family legs;
#: on a shared/throttled runner a single sample can be 5x off, while the
#: tens-of-seconds interp legs are long enough to keep ``--repeats``
FAST_MIN_REPEATS = 5

#: load-balance gate (>= 4 cores only): worst max/mean per-chunk wall
#: time on the skew-heavy kernels under work-aware chunking
IMBALANCE_MAX = 1.25
IMBALANCE_APPS = ("SDDMM", "UA(transf)")


def kernel_main(argv: list) -> int:
    """``--kernel`` mode: measure, record, and gate kernel execution speed."""
    import argparse

    ap = argparse.ArgumentParser(prog="run_speed.py --kernel")
    ap.add_argument("--scale", choices=("paper", "small"),
                    default=os.environ.get("REPRO_KERNEL_SCALE", "paper"))
    ap.add_argument("--repeats", type=int, default=1)
    ap.add_argument("--threads", type=int, default=None)
    ap.add_argument("--benchmarks", nargs="*", default=None)
    ap.add_argument("--no-check", action="store_true",
                    help="record results without the baseline regression gate")
    args = ap.parse_args(argv)

    sys.path.insert(0, str(ROOT / "src"))
    from repro.experiments.harness import measure_backend_speedups
    from repro.runtime import costmodel

    # compiled-parallel is always recorded: on one core the column shows
    # the pool's dispatch overhead honestly; parallel *gates* only apply
    # when parallel_meaningful (>= 4 cores)
    backends = ["interp", "compiled", "compiled-parallel", "auto"]
    parallel_meaningful = (os.cpu_count() or 1) >= 4
    names = args.benchmarks or KERNEL_APPS
    # warm the cost-model calibration so its one-time micro-benchmarks
    # never land inside an auto-backend timing
    costmodel.get_calibration()
    fast_repeats = max(args.repeats, FAST_MIN_REPEATS)
    repeats_by_backend = {b: fast_repeats for b in backends if b != "interp"}
    print(f"measuring {len(names)} kernels at scale={args.scale} "
          f"backends={backends} (repeats={args.repeats}, "
          f"compiled-family best-of-{fast_repeats}) ...")
    runs = measure_backend_speedups(
        names, backends=tuple(backends), scale=args.scale,
        repeats=args.repeats, repeats_by_backend=repeats_by_backend,
        threads=args.threads,
    )
    fusion_meta = _measure_fusion_deltas(names, args)
    static_meta = _collect_static_effects(names)
    snapshot_ab = _measure_snapshot_ab(static_meta, names, args)

    out = ROOT / os.environ.get("REPRO_BENCH_OUT", "BENCH_kernel_speed.json")
    baseline_path = ROOT / "BENCH_kernel_speed.json"
    baseline = None
    if baseline_path.exists():
        try:
            baseline = json.loads(baseline_path.read_text())
        except (OSError, json.JSONDecodeError):
            baseline = None

    import numpy

    payload = {
        "meta": {
            "scale": args.scale,
            "repeats": args.repeats,
            "cpu_count": os.cpu_count(),
            # parallel columns are honest wall times but only *meaningful*
            # as parallelism claims with enough cores to actually fan out
            "parallel_meaningful": parallel_meaningful,
            "backends": backends,
            "python": sys.version.split()[0],
            "numpy": numpy.__version__,
            # snapshot-skip A/B on the staging microkernel (the registry
            # kernels' rw arrays are all genuine read-modify-write and
            # must keep their snapshots — see static_effects per result)
            "snapshot_skip_ab": snapshot_ab,
        },
        "results": [
            {
                "benchmark": r.benchmark,
                "times_s": {b: round(t, 6) for b, t in r.times.items()},
                "speedups_vs_interp": {
                    b: round(r.speedup(b), 3) for b in backends if b != "interp"
                },
                "outputs_match": r.outputs_match,
                "chunk_imbalance": {
                    k: round(v, 3) for k, v in sorted(r.chunk_imbalance.items())
                },
                **(
                    {"fusion": fusion_meta[r.benchmark]}
                    if r.benchmark in fusion_meta
                    else {}
                ),
                **(
                    {"static_effects": static_meta[r.benchmark]}
                    if r.benchmark in static_meta
                    else {}
                ),
            }
            for r in runs
        ],
    }
    out.write_text(json.dumps(payload, indent=2) + "\n")

    width = max(len(r.benchmark) for r in runs)
    for r in runs:
        cells = "  ".join(f"{b}={r.times[b]:.3f}s" for b in backends if b in r.times)
        print(f"  {r.benchmark:<{width}}  {cells}  "
              f"compiled {r.speedup('compiled'):.1f}x  "
              f"auto {r.speedup('auto'):.1f}x  "
              f"match={r.outputs_match}")
    for name, info in fusion_meta.items():
        print(f"  {name}: fused {info['groups']} "
              f"unfused={info['compiled_unfused_s']:.3f}s "
              f"fused={info['compiled_fused_s']:.3f}s "
              f"gain={info['fused_gain_pct']:.1f}%")
    for name, loops in static_meta.items():
        cells = "; ".join(
            f"{lid}={m['class']}"
            + (f" snapfree={m['snapshot_free']}" if m["snapshot_free"] else "")
            for lid, m in sorted(loops.items())
        )
        print(f"  {name}: static effects {cells}")
    if snapshot_ab:
        for entry in snapshot_ab:
            print(f"  snapshot A/B [{entry['kernel']}]: "
                  f"skip={entry['skip_s']:.4f}s "
                  f"snapshot={entry['snapshot_s']:.4f}s "
                  f"gain={entry['skip_gain_pct']:.1f}%")
    print(f"kernel benchmark results written to {out}")

    failures = [f"{r.benchmark}: outputs diverged" for r in runs if not r.outputs_match]
    if not args.no_check:
        # auto must keep up with the best fixed backend on every kernel
        for r in runs:
            if "auto" not in r.times:
                continue
            fixed = {b: t for b, t in r.times.items() if b not in ("auto", "interp")}
            if not parallel_meaningful:
                # a 1-3 core pool time is dispatch-overhead noise, not a
                # backend auto should be judged against
                fixed.pop("compiled-parallel", None)
            if not fixed:
                continue
            best_b, best_t = min(fixed.items(), key=lambda kv: kv[1])
            if r.times["auto"] > AUTO_SLACK * best_t + AUTO_ABS_SLACK_S:
                failures.append(
                    f"{r.benchmark}: auto {r.times['auto']:.4f}s is more than "
                    f"{(AUTO_SLACK - 1) * 100:.0f}% behind best fixed backend "
                    f"{best_b}={best_t:.4f}s"
                )
    if not args.no_check and parallel_meaningful:
        for r in runs:
            if r.benchmark not in IMBALANCE_APPS or not r.chunk_imbalance:
                continue
            worst = r.worst_imbalance()
            if worst > IMBALANCE_MAX:
                failures.append(
                    f"{r.benchmark}: max/mean chunk time {worst:.2f} exceeds "
                    f"{IMBALANCE_MAX} (per-loop: {r.chunk_imbalance})"
                )
    elif not args.no_check:
        print(f"skipping parallel gates (imbalance, parallel floors): "
              f"cpu_count={os.cpu_count()} < 4, parallel numbers are "
              f"dispatch-overhead measurements, not parallelism")
    if not args.no_check and baseline and baseline.get("meta", {}).get("scale") == args.scale:
        base = {e["benchmark"]: e for e in baseline.get("results", [])}
        for r in runs:
            ref = base.get(r.benchmark)
            if not ref:
                continue
            for b in ("compiled", "auto", "compiled-parallel"):
                if b == "compiled-parallel" and not parallel_meaningful:
                    old = ref.get("speedups_vs_interp", {}).get(b)
                    if old:
                        print(f"skipping {r.benchmark} {b} floor "
                              f"({old:.1f}x): parallel_meaningful=false")
                    continue
                old = ref.get("speedups_vs_interp", {}).get(b)
                new = r.speedup(b)
                if old and new < REGRESSION_FLOOR * old:
                    failures.append(
                        f"{r.benchmark}: {b} speedup {new:.1f}x is >25% below "
                        f"the committed baseline {old:.1f}x"
                    )
    elif not args.no_check and baseline is None:
        print("no committed baseline found; skipping regression gate")
    for msg in failures:
        print(f"REGRESSION: {msg}", file=sys.stderr)
    return 1 if failures else 0


#: interleaved fused/unfused sample pairs for the fusion A/B delta
FUSION_AB_PAIRS = 51


def _measure_fusion_deltas(names: list, args) -> dict:
    """Fused vs unfused compiled time for every kernel that fuses.

    Uses the ``REPRO_FUSE=0`` kill-switch for the unfused leg so both
    share one parallelization result.  The two legs are *interleaved*
    (fused, unfused, fused, ...) and the gain is the median of the
    per-pair time ratios: adjacent samples see the same CPU-frequency /
    throttling state, so the paired statistic resolves a ~2% effect
    that best-of over sequential blocks cannot on a noisy shared
    machine.  The fused loop groups are named in the recorded metadata
    (acceptance criterion: the fused pair is visible in
    ``BENCH_kernel_speed.json``).
    """
    import statistics

    from repro.benchmarks.registry import get_benchmark
    from repro.experiments.harness import PIPELINES
    from repro.parallelizer.driver import parallelize
    from repro.runtime.compile import compile_program
    from repro.runtime.simulate import measure_kernel

    out = {}
    for name in names:
        bench = get_benchmark(name)
        result = parallelize(bench.source, PIPELINES["Cetus+NewAlgo"])
        verified = [f for f in getattr(result, "fusions", ()) if f.verified]
        if not verified:
            continue
        cp = compile_program(result.program, result.decisions, fusions=verified)
        if not cp.fused_groups:
            continue
        env = bench.paper_env() if args.scale == "paper" else bench.small_env()
        fused_ts, unfused_ts, ratios = [], [], []
        for _ in range(FUSION_AB_PAIRS):
            t_f, _ = measure_kernel(result, env, backend="compiled", repeats=1)
            os.environ["REPRO_FUSE"] = "0"
            try:
                t_u, _ = measure_kernel(result, env, backend="compiled", repeats=1)
            finally:
                os.environ.pop("REPRO_FUSE", None)
            fused_ts.append(t_f)
            unfused_ts.append(t_u)
            if t_f > 0:
                ratios.append(t_u / t_f)
        med_ratio = statistics.median(ratios) if ratios else 1.0
        out[name] = {
            "groups": [
                "+".join(g["loops"]) for g in cp.fused_groups
            ],
            "forwarded_loads": sum(g["forwarded_loads"] for g in cp.fused_groups),
            "compiled_fused_s": round(statistics.median(fused_ts), 6),
            "compiled_unfused_s": round(statistics.median(unfused_ts), 6),
            "ab_pairs": FUSION_AB_PAIRS,
            "fused_gain_pct": round(100.0 * (1.0 - 1.0 / med_ratio), 2),
        }
    return out


#: interleaved skip/snapshot sample pairs for the snapshot A/B delta
SNAPSHOT_AB_PAIRS = 31

#: staging kernel whose rw-overlap array ``t`` is provably snapshot-free
#: (write-before-read): the one shape where skipping the pre-dispatch
#: snapshot is sound, so the A/B isolates exactly that copy's cost
SNAPSHOT_STAGED_SRC = (
    "for (i = 0; i < n; i++) { t[i] = a[i] + x[i]; y[i] = t[i] * 2.0; }"
)


def _collect_static_effects(names: list) -> dict:
    """Static chunk-race classification of every dispatched loop.

    Records, per kernel and per chunk-dispatched loop, the classifier's
    verdict (``chunk-disjoint``/``overlapping``/``unknown``), its reason,
    the rw-overlap set, and which of those arrays were proven
    snapshot-free — the acceptance criterion's evidence that all registry
    parallel loops are disjoint or explicitly unknown.
    """
    from repro.benchmarks.registry import get_benchmark
    from repro.experiments.harness import PIPELINES
    from repro.parallelizer.driver import parallelize
    from repro.runtime.compile import compile_program

    out = {}
    for name in names:
        bench = get_benchmark(name)
        result = parallelize(bench.source, PIPELINES["Cetus+NewAlgo"])
        par = {lid for lid, d in result.decisions.items() if d.parallel}
        cp = compile_program(
            result.program, result.decisions, parallel=True, parallel_loops=par
        )
        loops = {}
        for key, meta in sorted(cp.chunk_meta.items()):
            st = meta.get("static", {})
            loops[key] = {
                "class": st.get("class", "unknown"),
                "reason": st.get("reason", ""),
                "rw": list(meta.get("rw", ())),
                "snapshot_free": list(meta.get("snapshot_free", ())),
            }
        if loops:
            out[name] = loops
    return out


def _measure_snapshot_ab(static_meta: dict, names: list, args) -> list:
    """Interleaved A/B of the snapshot skip (``REPRO_STATIC_EFFECTS=0``
    is the snapshot-restoring off-leg).

    Measures the staging microkernel — which provably qualifies for the
    skip — and any registry kernel whose chunk meta carries a non-empty
    ``snapshot_free`` set.  Kernels whose rw arrays are genuine
    read-modify-write (AMGmk's ``y_data``, UA's ``tx``/``u``, syrk's
    ``C``) keep their snapshots on both legs and are deliberately NOT
    measured here: there is no skip to quantify.
    """
    import statistics

    import numpy as np

    from repro.benchmarks.registry import get_benchmark
    from repro.experiments.harness import PIPELINES
    from repro.parallelizer.driver import parallelize
    from repro.runtime.simulate import measure_kernel

    def ab(kernel: str, result, env: dict) -> dict:
        skip_ts, snap_ts, ratios = [], [], []
        for _ in range(SNAPSHOT_AB_PAIRS):
            t_skip, _ = measure_kernel(result, env, backend="compiled-parallel", repeats=1)
            os.environ["REPRO_STATIC_EFFECTS"] = "0"
            try:
                t_snap, _ = measure_kernel(result, env, backend="compiled-parallel", repeats=1)
            finally:
                os.environ.pop("REPRO_STATIC_EFFECTS", None)
            skip_ts.append(t_skip)
            snap_ts.append(t_snap)
            if t_skip > 0:
                ratios.append(t_snap / t_skip)
        med = statistics.median(ratios) if ratios else 1.0
        return {
            "kernel": kernel,
            "ab_pairs": SNAPSHOT_AB_PAIRS,
            "skip_s": round(statistics.median(skip_ts), 6),
            "snapshot_s": round(statistics.median(snap_ts), 6),
            "skip_gain_pct": round(100.0 * (1.0 - 1.0 / med), 2),
        }

    out = []
    n = 2_000_000 if args.scale == "paper" else 4096
    rng = np.random.default_rng(23)
    env = {
        "n": n,
        "a": rng.random(n),
        "x": rng.random(n),
        "t": np.zeros(n),
        "y": np.zeros(n),
    }
    staged = parallelize(SNAPSHOT_STAGED_SRC, PIPELINES["Cetus+NewAlgo"])
    entry = ab("staged-store", staged, env)
    entry["n"] = n
    out.append(entry)

    for name in names:
        loops = static_meta.get(name, {})
        if not any(m["snapshot_free"] for m in loops.values()):
            continue
        bench = get_benchmark(name)
        result = parallelize(bench.source, PIPELINES["Cetus+NewAlgo"])
        kenv = bench.paper_env() if args.scale == "paper" else bench.small_env()
        out.append(ab(name, result, kenv))
    return out


#: edit-one-nest speedup gate: the warm (per-nest-cache) re-analysis of an
#: edited multi-nest benchmark must beat a cold full analysis by at least
#: this factor on UA(transf) or CG
INCREMENTAL_MIN_SPEEDUP = 5.0

#: (benchmark, kind, old-fragment, new-fragment): each edit touches exactly
#: one nest, leaving every other top-level nest byte-identical.  A
#: ``semantic`` edit changes the nest's meaning, so its re-analysis
#: genuinely re-runs phases 1/2, certification, and lowering for that one
#: nest; a ``formatting`` edit changes the nest's *text* but not its AST
#: (extra parentheses), so the content-addressed tiers prove full reuse —
#: the service-style traffic the per-nest cache is built for.
INCREMENTAL_EDITS = [
    ("CG", "semantic", "q[j] = w[j];", "q[j] = w[j] * 2;"),
    ("CG", "formatting", "q[j] = w[j];", "q[j] = (w[j]);"),
    (
        "UA(transf)",
        "semantic",
        "u[iel][c][j][i] * wt[j] * wt[i];",
        "u[iel][c][j][i] * wt[j] * wt[i] * 2;",
    ),
    ("UA(transf)", "formatting", "ntemp = 125*iel;", "ntemp = (125*iel);"),
]


def incremental_main(argv: list) -> int:
    """``--incremental`` mode: cold vs warm-after-edit analysis timing.

    Cold reps clear every memo tier and time a from-scratch run of the
    edited source.  Warm reps clear everything, run the *original*
    source to populate the caches, then time the first arrival of the
    *edited* source with no artificial clearing in between — modelling
    an editor loop where one nest changed and the rest of the program is
    served from the per-nest tier.  Results land in the ``incremental``
    section of ``BENCH_analysis_speed.json``; the gate fails unless some
    edit's parallelize (or analyze) speedup reaches
    ``INCREMENTAL_MIN_SPEEDUP``.
    """
    import argparse
    import dataclasses
    import time

    ap = argparse.ArgumentParser(prog="run_speed.py --incremental")
    ap.add_argument("--reps", type=int, default=7, help="best-of rep count per leg")
    ap.add_argument("--no-check", action="store_true",
                    help="record results without the speedup gate")
    args = ap.parse_args(argv)

    sys.path.insert(0, str(ROOT / "src"))
    from repro.analysis import AnalysisConfig, analyze_program
    from repro.benchmarks.registry import get_benchmark
    from repro.ir import perfstats
    from repro.parallelizer.driver import parallelize

    # the per-nest tier is production-only (verify_ir disables it)
    config = dataclasses.replace(AnalysisConfig.new_algorithm(), verify_ir=False)

    def clear_all():
        # every registered memo tier: a cold rep models a from-scratch
        # batch analysis (the state a fresh process starts from), not a
        # rerun that still rides the expression-level memos
        perfstats.clear_caches()

    entries = []
    for name, kind, old, new in INCREMENTAL_EDITS:
        source = get_benchmark(name).source
        if old not in source:
            print(f"REGRESSION: {name}: edit fragment {old!r} not found in source",
                  file=sys.stderr)
            return 1
        edited = source.replace(old, new, 1)
        entry = {"benchmark": name, "edit": kind, "reps": args.reps, "layers": {}}
        for layer, run in (
            ("analyze", lambda s: analyze_program(s, config)),
            ("parallelize", lambda s: parallelize(s, config)),
        ):
            # interleaved cold/warm pairs so adjacent samples share the
            # machine's load state.  Each warm sample is a genuine first
            # arrival of the edited program at a service that has already
            # analyzed the pre-edit source — no cache is touched between
            # populate and measurement; the edited text misses the
            # whole-program tier on its own and reuses the per-nest tier
            # for every untouched nest.
            cold = warm = float("inf")
            for _ in range(args.reps):
                clear_all()
                t0 = time.perf_counter()
                run(edited)
                cold = min(cold, time.perf_counter() - t0)
                clear_all()
                run(source)
                t0 = time.perf_counter()
                run(edited)
                warm = min(warm, time.perf_counter() - t0)
            entry["layers"][layer] = {
                "cold_ms": round(cold * 1e3, 3),
                "warm_after_edit_ms": round(warm * 1e3, 3),
                "speedup": round(cold / warm, 2) if warm > 0 else float("inf"),
            }
        entries.append(entry)

    out = ROOT / os.environ.get("REPRO_BENCH_OUT", "BENCH_analysis_speed.json")
    payload = {}
    if out.exists():
        try:
            payload = json.loads(out.read_text())
        except (OSError, json.JSONDecodeError):
            payload = {}
    payload["incremental"] = {
        "min_speedup_gate": INCREMENTAL_MIN_SPEEDUP,
        "results": entries,
    }
    out.write_text(json.dumps(payload, indent=2) + "\n")

    best = 0.0
    for entry in entries:
        for layer, cell in entry["layers"].items():
            print(f"  {entry['benchmark']:<12} {entry['edit']:<10} [{layer}]  "
                  f"cold={cell['cold_ms']:.2f}ms  "
                  f"warm-after-edit={cell['warm_after_edit_ms']:.2f}ms  "
                  f"speedup={cell['speedup']:.1f}x")
            best = max(best, cell["speedup"])
    print(f"incremental results written to {out}")

    if not args.no_check and best < INCREMENTAL_MIN_SPEEDUP:
        print(f"REGRESSION: best edit-one-nest speedup {best:.1f}x is below "
              f"the {INCREMENTAL_MIN_SPEEDUP:.0f}x gate", file=sys.stderr)
        return 1
    return 0


#: --service defaults: the acceptance load shape (50 concurrent clients)
SERVICE_CLIENTS = 50

#: warm-hit client-observed p99 gate in milliseconds; REPRO_SERVICE_P99_MS
#: overrides for slow shared runners
SERVICE_P99_MS_DEFAULT = 10.0

#: warm throughput below this fraction of the committed baseline fails
SERVICE_THROUGHPUT_FLOOR = 0.5

#: duplicate-batch size for the dedup proof
SERVICE_DEDUP_BATCH = 32

#: the warm-mix kernel (every client hammers this one source)
SERVICE_WARM_SRC = (
    "ws_z = 0;\n"
    "for (ws_i = 0; ws_i < ws_n; ws_i++){\n"
    "    if (ws_d[ws_i+1] - ws_d[ws_i] > 0)\n"
    "        ws_w[ws_z++] = ws_i;\n"
    "}\n"
    "for (ws_q = 0; ws_q < ws_m; ws_q++){\n"
    "    ws_y[ws_w[ws_q]] = ws_y[ws_w[ws_q]] + 1;\n"
    "}\n"
)


def service_main(argv: list) -> int:
    """``--service`` mode: concurrent load test of the analysis daemon."""
    import argparse
    import signal
    import tempfile
    import threading
    import time

    ap = argparse.ArgumentParser(prog="run_speed.py --service")
    ap.add_argument("--clients", type=int, default=SERVICE_CLIENTS)
    ap.add_argument("--warm-requests", type=int, default=40,
                    help="warm-mix requests per client")
    ap.add_argument("--cold-requests", type=int, default=4,
                    help="cold-mix requests per client (each a unique source)")
    ap.add_argument("--edited-requests", type=int, default=1,
                    help="edited-nest requests per client (unique CG edits)")
    ap.add_argument("--no-check", action="store_true",
                    help="record results without the p99/throughput gates")
    args = ap.parse_args(argv)

    sys.path.insert(0, str(ROOT / "src"))
    from repro.benchmarks.registry import get_benchmark
    from repro.service.client import ServiceClient

    def shm_entries():
        try:
            return set(os.listdir("/dev/shm"))
        except OSError:
            return set()

    tmp = tempfile.mkdtemp(prefix="repro-svcbench-")
    sock = os.path.join(tmp, "svc.sock")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.pop("REPRO_CACHE_DIR", None)  # cold mix must be genuinely cold
    shm_before = shm_entries()
    stderr_log = open(os.path.join(tmp, "daemon-stderr.log"), "w")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", sock],
        stdout=subprocess.PIPE, stderr=stderr_log, env=env, text=True,
    )
    ready_line = proc.stdout.readline()
    if not ready_line:
        proc.wait()
        print("REGRESSION: daemon failed to start", file=sys.stderr)
        return 1
    assert json.loads(ready_line).get("ready") is True

    # the load generator is one process running ``clients`` threads: with
    # the default 5 ms GIL switch interval a thread that finished its recv
    # can wait several ms just to *record* its timestamp, and that
    # scheduler artifact — not the daemon — dominates warm-hit tails on a
    # small runner.  Tighten the interval for the duration of the drive.
    prev_switch = sys.getswitchinterval()
    sys.setswitchinterval(0.0005)

    def run_mix(per_client: int, make_request) -> dict:
        """Fan ``clients`` threads over the daemon; exact client-side
        percentiles (sorted samples, not histogram bounds)."""
        lat = [[] for _ in range(args.clients)]
        errors = [0] * args.clients
        barrier = threading.Barrier(args.clients + 1)

        def worker(cid: int) -> None:
            with ServiceClient(unix_path=sock) as cli:
                barrier.wait()
                for i in range(per_client):
                    req = make_request(cid, i)
                    t0 = time.perf_counter()
                    reply = cli.request(req, check=False)
                    dt = time.perf_counter() - t0
                    if reply.get("status") == "ok":
                        lat[cid].append(dt)
                    else:
                        errors[cid] += 1

        threads = [
            threading.Thread(target=worker, args=(c,)) for c in range(args.clients)
        ]
        for t in threads:
            t.start()
        barrier.wait()
        t_start = time.perf_counter()
        for t in threads:
            t.join()
        wall = time.perf_counter() - t_start
        samples = sorted(x for per in lat for x in per)
        n = len(samples)
        total = n + sum(errors)

        def pct(p: float) -> float:
            return 1e3 * samples[min(n - 1, int(p / 100.0 * n))] if n else 0.0

        return {
            "clients": args.clients,
            "requests": total,
            "errors": sum(errors),
            "wall_s": round(wall, 4),
            "throughput_rps": round(total / wall, 2) if wall > 0 else 0.0,
            "p50_ms": round(pct(50), 3),
            "p90_ms": round(pct(90), 3),
            "p99_ms": round(pct(99), 3),
            "mean_ms": round(1e3 * sum(samples) / n, 3) if n else 0.0,
        }

    failures = []
    mixes = {}
    salt = os.getpid()  # daemon is fresh per run; in-run uniqueness suffices
    try:
        # ---- warm mix: every client hammers one pre-warmed source -------
        with ServiceClient(unix_path=sock) as c:
            c.parallelize(SERVICE_WARM_SRC)  # populate every tier
        mixes["warm"] = run_mix(
            args.warm_requests,
            lambda cid, i: {"op": "parallelize", "source": SERVICE_WARM_SRC},
        )

        # ---- cold mix: every request is a never-seen source -------------
        def cold_request(cid: int, i: int) -> dict:
            k = salt + cid * 1000 + i
            return {
                "op": "parallelize",
                "source": f"for (i = 0; i < n; i++) {{ a[i] = b[i] + {k}; }}",
            }

        mixes["cold"] = run_mix(args.cold_requests, cold_request)

        # ---- edited-nest mix: unique single-nest edits of a warm CG -----
        cg = get_benchmark("CG").source
        frag = "q[j] = w[j];"
        assert frag in cg, "CG edit fragment moved"
        with ServiceClient(unix_path=sock) as c:
            c.parallelize(cg)  # populate the per-nest tier with the base

        def edited_request(cid: int, i: int) -> dict:
            k = cid * 100 + i + 2
            return {"op": "parallelize", "source": cg.replace(frag, f"q[j] = w[j] * {k};", 1)}

        mixes["edited_nest"] = run_mix(args.edited_requests, edited_request)

        # ---- dedup proof: one batch of N identical programs -------------
        dedup_src = f"for (i = 0; i < n; i++) {{ dd[i] = ee[i] * {salt}; }}"
        with ServiceClient(unix_path=sock) as c:
            before = c.metrics()["counters"]["batch_dedup_hits"]
            reply = c.request({
                "op": "parallelize",
                "programs": [
                    {"id": str(i), "source": dedup_src}
                    for i in range(SERVICE_DEDUP_BATCH)
                ],
            })
            after = c.metrics()["counters"]["batch_dedup_hits"]
        dedup_hits = after - before
        dedup = {
            "batch_size": SERVICE_DEDUP_BATCH,
            "dedup_hits": dedup_hits,
            "unique_analyzed": SERVICE_DEDUP_BATCH - dedup_hits,
            "results_returned": len(reply.get("results", ())),
        }
        if dedup_hits != SERVICE_DEDUP_BATCH - 1:
            failures.append(
                f"batch dedup: expected {SERVICE_DEDUP_BATCH - 1} duplicate hits "
                f"for {SERVICE_DEDUP_BATCH} identical programs, counters show {dedup_hits}"
            )
        with ServiceClient(unix_path=sock) as c:
            server_metrics = c.metrics()
    finally:
        sys.setswitchinterval(prev_switch)
        # ---- clean shutdown is part of the measurement -------------------
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
        try:
            exit_code = proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            exit_code = proc.wait()
        proc.stdout.close()
        stderr_log.close()
    clean = exit_code == 0 and not os.path.exists(sock)
    leaked = shm_entries() - shm_before
    if not clean:
        failures.append(
            f"daemon shutdown unclean: exit={exit_code} "
            f"socket_removed={not os.path.exists(sock)}"
        )
    if leaked:
        failures.append(f"orphan /dev/shm segments after shutdown: {sorted(leaked)}")

    out = ROOT / os.environ.get("REPRO_BENCH_OUT", "BENCH_service.json")
    baseline_path = ROOT / "BENCH_service.json"
    baseline = None
    if baseline_path.exists():
        try:
            baseline = json.loads(baseline_path.read_text())
        except (OSError, json.JSONDecodeError):
            baseline = None

    p99_gate_ms = float(os.environ.get("REPRO_SERVICE_P99_MS", SERVICE_P99_MS_DEFAULT))
    payload = {
        "meta": {
            "clients": args.clients,
            "cpu_count": os.cpu_count(),
            "python": sys.version.split()[0],
            "p99_gate_ms": p99_gate_ms,
            "throughput_floor": SERVICE_THROUGHPUT_FLOOR,
            "transport": "unix",
        },
        "mixes": mixes,
        "dedup": dedup,
        "clean_shutdown": clean,
        "server_counters": server_metrics.get("counters", {}),
        "server_latency": server_metrics.get("latency", {}),
    }
    out.write_text(json.dumps(payload, indent=2) + "\n")

    for name, m in mixes.items():
        print(f"  {name:<12} {m['requests']} reqs x {m['clients']} clients  "
              f"p50={m['p50_ms']:.2f}ms  p99={m['p99_ms']:.2f}ms  "
              f"{m['throughput_rps']:.0f} req/s  errors={m['errors']}")
    print(f"  dedup        batch of {dedup['batch_size']} -> "
          f"{dedup['unique_analyzed']} analyzed, {dedup['dedup_hits']} dedup hits")
    print(f"  shutdown     clean={clean} (exit={exit_code})")
    print(f"service benchmark results written to {out}")

    if not args.no_check:
        for name, m in mixes.items():
            if m["errors"]:
                failures.append(f"{name}: {m['errors']} non-ok replies under load")
        warm = mixes["warm"]
        if warm["p99_ms"] > p99_gate_ms:
            failures.append(
                f"warm-hit p99 {warm['p99_ms']:.2f}ms exceeds the "
                f"{p99_gate_ms:.0f}ms gate at {args.clients} clients "
                f"(REPRO_SERVICE_P99_MS overrides)"
            )
        if baseline:
            old = baseline.get("mixes", {}).get("warm", {}).get("throughput_rps")
            new = warm["throughput_rps"]
            if old and new < SERVICE_THROUGHPUT_FLOOR * old:
                failures.append(
                    f"warm throughput {new:.0f} req/s is below "
                    f"{SERVICE_THROUGHPUT_FLOOR:.0%} of the committed "
                    f"baseline {old:.0f} req/s"
                )
        elif baseline is None:
            print("no committed service baseline; skipping throughput gate")
    for msg in failures:
        print(f"REGRESSION: {msg}", file=sys.stderr)
    return 1 if failures else 0


def main(argv: list = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if "--service" in argv:
        argv.remove("--service")
        return service_main(argv)
    if "--kernel" in argv:
        argv.remove("--kernel")
        return kernel_main(argv)
    if "--incremental" in argv:
        argv.remove("--incremental")
        return incremental_main(argv)
    if "--budget" in argv:
        argv.remove("--budget")
        argv += ["-k", "budgeted"]
    out = ROOT / os.environ.get("REPRO_BENCH_OUT", "BENCH_analysis_speed.json")
    env = dict(os.environ)
    src = str(ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        str(ROOT / "benchmarks" / "test_analysis_speed.py"),
        "-q",
        f"--benchmark-json={out}",
        *argv,
    ]
    rc = subprocess.call(cmd, env=env, cwd=str(ROOT))
    if rc == 0:
        print(f"benchmark results written to {out}")
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
