"""Benchmark: regenerate Figure 16 (dynamic vs static scheduling, SDDMM)."""

from conftest import print_block

from repro.experiments.fig16 import fig16_cells, format_fig16


def test_fig16(benchmark):
    cells = benchmark(fig16_cells)
    per = {(c.dataset, c.cores, c.schedule): c.improvement for c in cells}
    # the paper's qualitative result: dynamic wins for the skewed matrices,
    # static wins for af_shell1
    assert per[("gsm_106857", 16, "dynamic")] > per[("gsm_106857", 16, "static")]
    assert per[("af_shell1", 16, "static")] >= per[("af_shell1", 16, "dynamic")]
    print_block("Figure 16 — SDDMM dynamic vs static scheduling", format_fig16(cells))
