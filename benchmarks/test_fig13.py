"""Benchmark: regenerate Figure 13 (improvement with vs without
subscripted-subscript analysis; AMGmk/SDDMM/UA on 4/8/16 cores)."""

from conftest import print_block

from repro.experiments.fig13 import fig13_cells, format_fig13


def test_fig13(benchmark):
    cells = benchmark(fig13_cells)
    assert all(c.improvement > 1.0 for c in cells)
    print_block("Figure 13 — with vs without subscripted-subscript analysis", format_fig13(cells))
