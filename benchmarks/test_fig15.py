"""Benchmark: regenerate Figure 15 (parallel efficiency)."""

from conftest import print_block

from repro.experiments.fig15 import fig15_cells, format_fig15


def test_fig15(benchmark):
    cells = benchmark(fig15_cells)
    assert all(0 < c.efficiency <= 100 for c in cells)
    print_block("Figure 15 — parallel efficiency (%)", format_fig15(cells))
