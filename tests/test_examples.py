"""Every shipped example must run to completion (smoke tests)."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = sorted(
    p for p in (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(path, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path.name} produced no output"


def test_quickstart_shows_paper_artifacts(capsys, monkeypatch):
    path = next(p for p in EXAMPLES if p.name == "quickstart.py")
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert "_temp_0 = m" in out  # Figure 4(b) normalization
    assert "λ_m" in out  # Figure 5 SVD
    assert "#pragma omp parallel for" in out
