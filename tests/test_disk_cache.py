"""On-disk result cache tier: write-through, cold hits, corruption, opt-out."""

from __future__ import annotations

import glob
import os

import pytest

from repro import cache
from repro.analysis import AnalysisConfig
from repro.analysis.analyzer import _ANALYSIS_CACHE
from repro.parallelizer import parallelize
from repro.parallelizer.driver import _PARALLELIZE_CACHE

SRC = "for (i = 0; i < n; i++) { a[i] = b[i] + 1; }"


def _cold_memory():
    _ANALYSIS_CACHE.clear()
    _PARALLELIZE_CACHE.clear()


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    cache.enable()
    _cold_memory()
    yield tmp_path
    _cold_memory()


def test_disabled_without_env(monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    assert cache.cache_dir() is None
    cache.store("analysis", ("d" * 64, "fp"), {"x": 1})  # silently no-op
    assert cache.load("analysis", ("d" * 64, "fp")) is None


def test_write_through_and_cold_hit(cache_dir):
    r1 = parallelize(SRC, AnalysisConfig.new_algorithm())
    entries = glob.glob(str(cache_dir / "*" / "*" / "*.pkl"))
    assert len(entries) == 2  # one analysis + one parallelize entry
    assert not glob.glob(str(cache_dir / "*" / "*" / "*.tmp"))  # atomic writes
    _cold_memory()
    r2 = parallelize(SRC, AnalysisConfig.new_algorithm())
    assert r2.to_c() == r1.to_c()
    assert len(glob.glob(str(cache_dir / "*" / "*" / "*.pkl"))) == 2  # no rewrite


def test_disk_hit_is_isolated_from_mutation(cache_dir):
    r1 = parallelize(SRC, AnalysisConfig.new_algorithm())
    _cold_memory()
    r2 = parallelize(SRC, AnalysisConfig.new_algorithm())
    r2.program.stmts.clear()  # downstream mutation
    _cold_memory()
    r3 = parallelize(SRC, AnalysisConfig.new_algorithm())
    assert r3.to_c() == r1.to_c()


def test_corrupt_entry_is_ignored_and_deleted(cache_dir):
    r1 = parallelize(SRC, AnalysisConfig.new_algorithm())
    entries = glob.glob(str(cache_dir / "*" / "*" / "*.pkl"))
    for path in entries:
        with open(path, "wb") as fh:
            fh.write(b"not a pickle")
    _cold_memory()
    r2 = parallelize(SRC, AnalysisConfig.new_algorithm())
    assert r2.to_c() == r1.to_c()


def test_corruption_fuzz_never_raises(cache_dir):
    """Any byte-level damage reads as a clean self-deleting miss.

    Fuzzes the v2 entry format with truncations (torn writes), bit flips
    (rot that may still parse as pickle), garbage overwrites and
    zero-length files — ``load`` must return None, never raise, and the
    damaged entry must be gone so the next writer starts clean.
    """
    import random

    rng = random.Random(0xC0FFEE)
    key = ("f" * 64, "fuzz")
    value = {"verdict": "parallel", "work": list(range(64))}
    for trial in range(60):
        cache.store("analysis", key, value)
        path = cache._entry_path(str(cache_dir), "analysis", key)
        with open(path, "rb") as fh:
            blob = bytearray(fh.read())
        mode = trial % 4
        if mode == 0:  # torn write: truncate at a random point
            blob = blob[: rng.randrange(0, len(blob))]
        elif mode == 1:  # bit rot: flip 1-4 random bits
            for _ in range(rng.randrange(1, 5)):
                blob[rng.randrange(len(blob))] ^= 1 << rng.randrange(8)
        elif mode == 2:  # overwritten by a crashed writer
            blob = bytearray(rng.randbytes(rng.randrange(1, 128)))
        else:  # zero-length file
            blob = bytearray()
        with open(path, "wb") as fh:
            fh.write(bytes(blob))
        got = cache.load("analysis", key)
        if got is not None:
            # a flipped bit can land in an ignorable pickle region; the
            # digest check makes that impossible for the payload itself
            assert got == value
        else:
            assert not os.path.exists(path), "corrupt entry must self-delete"
    # the tier still works after the fuzz storm
    cache.store("analysis", key, value)
    assert cache.load("analysis", key) == value


def test_injected_cache_corruption_is_a_miss(cache_dir, monkeypatch):
    """The ``cache-corrupt`` chaos seam damages a real entry mid-read."""
    from repro.runtime import faultplan

    key = ("a" * 64, "fp")
    cache.store("analysis", key, {"x": 1})
    monkeypatch.setenv("REPRO_FAULTS", "cache-corrupt")
    faultplan.reset()
    try:
        assert cache.load("analysis", key) is None  # corrupted -> clean miss
        path = cache._entry_path(str(cache_dir), "analysis", key)
        assert not os.path.exists(path)
        cache.store("analysis", key, {"x": 2})  # clause is one-shot
        assert cache.load("analysis", key) == {"x": 2}
    finally:
        monkeypatch.delenv("REPRO_FAULTS")
        faultplan.reset()


def test_version_skew_is_a_miss(cache_dir):
    key = ("e" * 64, "fp")
    cache.store("analysis", key, {"x": 1})
    assert cache.load("analysis", key) == {"x": 1}
    path = cache._entry_path(str(cache_dir), "analysis", key)
    import pickle

    with open(path, "wb") as fh:
        pickle.dump((cache.FORMAT_VERSION + 1, {"x": 1}), fh)
    assert cache.load("analysis", key) is None
    assert not os.path.exists(path)  # stale entry dropped


def test_config_fingerprint_keys_are_distinct(cache_dir):
    parallelize(SRC, AnalysisConfig.new_algorithm())
    parallelize(SRC, AnalysisConfig.classical())
    # same source under two configs -> four distinct entries
    assert len(glob.glob(str(cache_dir / "*" / "*" / "*.pkl"))) == 4


def test_disable_blocks_reads_and_writes(cache_dir):
    parallelize(SRC, AnalysisConfig.new_algorithm())
    cache.disable()
    try:
        assert cache.cache_dir() is None
        n0 = len(glob.glob(str(cache_dir / "*" / "*" / "*.pkl")))
        _cold_memory()
        parallelize(SRC, AnalysisConfig.new_algorithm())  # recomputes silently
        assert len(glob.glob(str(cache_dir / "*" / "*" / "*.pkl"))) == n0
    finally:
        cache.enable()


def test_shard_layout_fans_out_on_digest_prefix(cache_dir):
    import hashlib

    for seed in ("alpha", "beta", "gamma"):
        digest = hashlib.sha256(seed.encode()).hexdigest()
        cache.store("analysis", (digest, "fp"), {"seed": seed})
        path = cache._entry_path(str(cache_dir), "analysis", (digest, "fp"))
        assert os.path.basename(os.path.dirname(path)) == digest[:2]
        assert os.path.exists(path)


def test_corrupt_read_retries_against_concurrent_replace(cache_dir):
    """A torn read races a finishing writer: retry, don't delete.

    Simulates the multi-process interleaving where we open an entry, a
    concurrent writer atomically replaces it, and our bytes then fail
    verification: the path now names a *different* inode, so load must
    retry against the fresh entry (counting ``disk_race_retries``)
    instead of condemning the file the other process just published.
    """
    import builtins

    from repro.ir import perfstats

    key = ("c" * 64, "fp")
    cache.store("analysis", key, {"x": 42})
    path = cache._entry_path(str(cache_dir), "analysis", key)
    decoy = path + ".stale"  # stands in for the pre-replace inode
    with open(decoy, "wb") as fh:
        fh.write(b"torn bytes from the entry as it looked before the replace")

    real_open = builtins.open
    redirected = []

    def first_open_sees_stale_inode(file, *args, **kwargs):
        if file == path and not redirected:
            redirected.append(file)
            return real_open(decoy, *args, **kwargs)
        return real_open(file, *args, **kwargs)

    before = perfstats.STATS.disk_race_retries
    builtins.open = first_open_sees_stale_inode
    try:
        got = cache.load("analysis", key)
    finally:
        builtins.open = real_open
    assert redirected  # the stale read really happened
    assert got == {"x": 42}  # served from the fresh replacement
    assert perfstats.STATS.disk_race_retries == before + 1
    assert os.path.exists(path), "the fresh entry must not be deleted"


def test_stably_corrupt_entry_does_not_count_a_retry(cache_dir):
    from repro.ir import perfstats

    key = ("d" * 64, "fp")
    cache.store("analysis", key, {"x": 1})
    path = cache._entry_path(str(cache_dir), "analysis", key)
    with open(path, "wb") as fh:
        fh.write(b"stably corrupt")
    before = perfstats.STATS.disk_race_retries
    assert cache.load("analysis", key) is None
    assert perfstats.STATS.disk_race_retries == before  # same inode: no retry
    assert not os.path.exists(path)


def _stress_child(root: str, proc_idx: int, iters: int) -> None:
    """One writer/reader process in the shared-cache stress test."""
    import hashlib

    os.environ["REPRO_CACHE_DIR"] = root
    cache.enable()
    shared = [hashlib.sha256(f"shared{j}".encode()).hexdigest() for j in range(4)]
    mine = hashlib.sha256(f"proc{proc_idx}".encode()).hexdigest()
    for i in range(iters):
        for d in shared:
            cache.store("stress", (d, "fp"), {"k": d, "p": proc_idx, "i": i, "pad": "x" * 256})
            got = cache.load("stress", (d, "fp"))
            # a concurrent read may miss (mid-replace) but must NEVER
            # return bytes that fail integrity or belong to another key
            assert got is None or got["k"] == d, got
        cache.store("stress", (mine, "fp"), {"k": mine, "i": i})
        got = cache.load("stress", (mine, "fp"))
        assert got is not None and got["k"] == mine, got  # sole writer: no loss


def test_multiprocess_shared_cache_stress(cache_dir):
    """8 processes hammer one cache dir: no corrupt reads, no lost entries."""
    import hashlib
    import multiprocessing

    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        pytest.skip("fork start method unavailable")
    procs = [
        ctx.Process(target=_stress_child, args=(str(cache_dir), p, 25))
        for p in range(8)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=120)
    assert all(p.exitcode == 0 for p in procs), [p.exitcode for p in procs]
    # zero lost entries: every key written is present and intact
    for j in range(4):
        d = hashlib.sha256(f"shared{j}".encode()).hexdigest()
        got = cache.load("stress", (d, "fp"))
        assert got is not None and got["k"] == d
    for pidx in range(8):
        d = hashlib.sha256(f"proc{pidx}".encode()).hexdigest()
        got = cache.load("stress", (d, "fp"))
        assert got is not None and got["k"] == d
    assert not glob.glob(str(cache_dir / "stress" / "*" / "*.tmp"))  # no torn tmps


def test_cli_no_disk_cache_flag(cache_dir, tmp_path, capsys):
    from repro.cli import main

    src_file = tmp_path / "k.c"
    src_file.write_text(SRC)
    for f in glob.glob(str(cache_dir / "*" / "*" / "*.pkl")):
        os.unlink(f)
    cache.enable()
    try:
        assert main(["--no-disk-cache", "report", str(src_file)]) == 0
        assert not glob.glob(str(cache_dir / "*" / "*" / "*.pkl"))
    finally:
        cache.enable()
