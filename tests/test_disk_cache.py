"""On-disk result cache tier: write-through, cold hits, corruption, opt-out."""

from __future__ import annotations

import glob
import os

import pytest

from repro import cache
from repro.analysis import AnalysisConfig
from repro.analysis.analyzer import _ANALYSIS_CACHE
from repro.parallelizer import parallelize
from repro.parallelizer.driver import _PARALLELIZE_CACHE

SRC = "for (i = 0; i < n; i++) { a[i] = b[i] + 1; }"


def _cold_memory():
    _ANALYSIS_CACHE.clear()
    _PARALLELIZE_CACHE.clear()


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    cache.enable()
    _cold_memory()
    yield tmp_path
    _cold_memory()


def test_disabled_without_env(monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    assert cache.cache_dir() is None
    cache.store("analysis", ("d" * 64, "fp"), {"x": 1})  # silently no-op
    assert cache.load("analysis", ("d" * 64, "fp")) is None


def test_write_through_and_cold_hit(cache_dir):
    r1 = parallelize(SRC, AnalysisConfig.new_algorithm())
    entries = glob.glob(str(cache_dir / "*" / "*" / "*.pkl"))
    assert len(entries) == 2  # one analysis + one parallelize entry
    assert not glob.glob(str(cache_dir / "*" / "*" / "*.tmp"))  # atomic writes
    _cold_memory()
    r2 = parallelize(SRC, AnalysisConfig.new_algorithm())
    assert r2.to_c() == r1.to_c()
    assert len(glob.glob(str(cache_dir / "*" / "*" / "*.pkl"))) == 2  # no rewrite


def test_disk_hit_is_isolated_from_mutation(cache_dir):
    r1 = parallelize(SRC, AnalysisConfig.new_algorithm())
    _cold_memory()
    r2 = parallelize(SRC, AnalysisConfig.new_algorithm())
    r2.program.stmts.clear()  # downstream mutation
    _cold_memory()
    r3 = parallelize(SRC, AnalysisConfig.new_algorithm())
    assert r3.to_c() == r1.to_c()


def test_corrupt_entry_is_ignored_and_deleted(cache_dir):
    r1 = parallelize(SRC, AnalysisConfig.new_algorithm())
    entries = glob.glob(str(cache_dir / "*" / "*" / "*.pkl"))
    for path in entries:
        with open(path, "wb") as fh:
            fh.write(b"not a pickle")
    _cold_memory()
    r2 = parallelize(SRC, AnalysisConfig.new_algorithm())
    assert r2.to_c() == r1.to_c()


def test_version_skew_is_a_miss(cache_dir):
    key = ("e" * 64, "fp")
    cache.store("analysis", key, {"x": 1})
    assert cache.load("analysis", key) == {"x": 1}
    path = cache._entry_path(str(cache_dir), "analysis", key)
    import pickle

    with open(path, "wb") as fh:
        pickle.dump((cache.FORMAT_VERSION + 1, {"x": 1}), fh)
    assert cache.load("analysis", key) is None
    assert not os.path.exists(path)  # stale entry dropped


def test_config_fingerprint_keys_are_distinct(cache_dir):
    parallelize(SRC, AnalysisConfig.new_algorithm())
    parallelize(SRC, AnalysisConfig.classical())
    # same source under two configs -> four distinct entries
    assert len(glob.glob(str(cache_dir / "*" / "*" / "*.pkl"))) == 4


def test_disable_blocks_reads_and_writes(cache_dir):
    parallelize(SRC, AnalysisConfig.new_algorithm())
    cache.disable()
    try:
        assert cache.cache_dir() is None
        n0 = len(glob.glob(str(cache_dir / "*" / "*" / "*.pkl")))
        _cold_memory()
        parallelize(SRC, AnalysisConfig.new_algorithm())  # recomputes silently
        assert len(glob.glob(str(cache_dir / "*" / "*" / "*.pkl"))) == n0
    finally:
        cache.enable()


def test_cli_no_disk_cache_flag(cache_dir, tmp_path, capsys):
    from repro.cli import main

    src_file = tmp_path / "k.c"
    src_file.write_text(SRC)
    for f in glob.glob(str(cache_dir / "*" / "*" / "*.pkl")):
        os.unlink(f)
    cache.enable()
    try:
        assert main(["--no-disk-cache", "report", str(src_file)]) == 0
        assert not glob.glob(str(cache_dir / "*" / "*" / "*.pkl"))
    finally:
        cache.enable()
