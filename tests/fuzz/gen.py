"""Grammar-based program generator for the crash-free fuzz gate.

Generates small mini-C programs in the subscripted-subscript dialect the
analysis consumes, together with an environment that makes them *safe to
execute*: every array is pre-allocated, every generated subscript is
provably in range, and no division by zero can occur.  The generator's job
is NOT to produce race-free programs — scatter loops through randomly
filled index arrays are deliberately racy — the *compiler's* job is to
refuse to parallelize those.  The fuzz gate therefore checks two things:

1. analysis and parallelization never raise (fail-soft engine), and
2. every loop the pipeline marks parallel passes the dynamic race check
   (soundness).

Programs mix the paper's idioms (counter fills, affine fills, monotonic
recurrences, gather/scatter consumers) with ineligible constructs (while
loops, breaks, non-unit steps) that must take the conservative path.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any, Dict, List

import numpy as np


@dataclasses.dataclass
class FuzzProgram:
    """One generated program plus an environment it can run in."""

    seed: int
    source: str
    env: Dict[str, Any]

    def fresh_env(self) -> Dict[str, Any]:
        """Independent copy (arrays are mutated by execution)."""
        return {
            k: (v.copy() if isinstance(v, np.ndarray) else v)
            for k, v in self.env.items()
        }


class _Gen:
    def __init__(self, rng: random.Random):
        self.rng = rng
        self.n = rng.randint(6, 12)
        self.bound = 4 * self.n + 8  # every array has this many elements
        self.index_arrays: List[str] = []  # values always within [0, bound)
        self.data_arrays: List[str] = []
        self.scalars: List[str] = []
        self.counter = 0
        self.env: Dict[str, Any] = {"n": self.n}

    # -- name & value helpers ---------------------------------------------

    def fresh(self, prefix: str) -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    def new_index_array(self, prefilled: bool) -> str:
        name = self.fresh("idx")
        self.index_arrays.append(name)
        vals = (
            [self.rng.randrange(self.n) for _ in range(self.bound)]
            if prefilled
            else [0] * self.bound
        )
        self.env[name] = np.array(vals, dtype=np.int64)
        return name

    def new_data_array(self) -> str:
        name = self.fresh("a")
        self.data_arrays.append(name)
        self.env[name] = np.array(
            [self.rng.randrange(-9, 10) for _ in range(self.bound)], dtype=np.int64
        )
        return name

    def new_scalar(self, value: int) -> str:
        name = self.fresh("s")
        self.scalars.append(name)
        self.env[name] = value
        return name

    def any_index_array(self) -> str:
        if self.index_arrays and self.rng.random() < 0.8:
            return self.rng.choice(self.index_arrays)
        return self.new_index_array(prefilled=True)

    def any_data_array(self) -> str:
        if self.data_arrays and self.rng.random() < 0.8:
            return self.rng.choice(self.data_arrays)
        return self.new_data_array()

    def ub(self) -> str:
        """Loop upper bound: symbolic ``n`` or its literal value."""
        return "n" if self.rng.random() < 0.7 else str(self.n)

    # -- expressions --------------------------------------------------------

    def subscript(self, idx_var: str) -> str:
        """An in-range subscript expression using loop index ``idx_var``."""
        r = self.rng.random()
        if r < 0.40:
            return idx_var
        if r < 0.60:
            return f"{idx_var} + {self.rng.randint(1, 3)}"
        if r < 0.85:
            return f"{self.any_index_array()}[{idx_var}]"
        return str(self.rng.randrange(self.n))

    def value_expr(self, idx_var: str, depth: int = 0) -> str:
        """A side-effect-free integer expression (safe to evaluate)."""
        r = self.rng.random()
        if depth >= 2 or r < 0.35:
            leaf = self.rng.random()
            if leaf < 0.3:
                return idx_var
            if leaf < 0.5 and self.scalars:
                return self.rng.choice(self.scalars)
            if leaf < 0.75:
                return str(self.rng.randint(0, 9))
            return f"{self.any_data_array()}[{self.subscript(idx_var)}]"
        op = self.rng.choice(["+", "+", "-", "*"])
        lhs = self.value_expr(idx_var, depth + 1)
        rhs = self.value_expr(idx_var, depth + 1)
        if self.rng.random() < 0.1:
            return f"({lhs} {op} {rhs}) / {self.rng.randint(1, 4)}"
        return f"({lhs} {op} {rhs})"

    # -- program segments ---------------------------------------------------

    def seg_affine_fill(self) -> str:
        arr = self.new_index_array(prefilled=False)
        c0 = self.rng.choice([1, 2])
        c1 = self.rng.randint(0, 3)
        i = self.fresh("i")
        # c0*i + c1 <= 2*(n-1) + 3 < 4n + 8, so the values stay index-safe
        return (
            f"for ({i} = 0; {i} < {self.ub()}; {i}++) "
            f"{arr}[{i}] = {c0} * {i} + {c1};"
        )

    def seg_counter_fill(self) -> str:
        arr = self.new_index_array(prefilled=False)
        data = self.any_data_array()
        k = self.new_scalar(0)
        self.env[k] = 0
        i = self.fresh("i")
        store = i if self.rng.random() < 0.5 else k
        return (
            f"{k} = 0;\n"
            f"for ({i} = 0; {i} < {self.ub()}; {i}++) {{\n"
            f"  if ({data}[{i}] > {self.rng.randint(-3, 3)}) {{\n"
            f"    {arr}[{k}] = {store};\n"
            f"    {k} = {k} + 1;\n"
            f"  }}\n"
            f"}}"
        )

    def seg_recurrence_fill(self) -> str:
        arr = self.new_index_array(prefilled=False)
        d = self.rng.choice([0, 1])
        i = self.fresh("i")
        return (
            f"{arr}[0] = 0;\n"
            f"for ({i} = 1; {i} < {self.ub()}; {i}++) "
            f"{arr}[{i}] = {arr}[{i} - 1] + {d};"
        )

    def seg_scatter(self) -> str:
        idx = self.any_index_array()
        dst = self.any_data_array()
        i = self.fresh("i")
        return (
            f"for ({i} = 0; {i} < {self.ub()}; {i}++) "
            f"{dst}[{idx}[{i}]] = {self.value_expr(i)};"
        )

    def seg_gather(self) -> str:
        idx = self.any_index_array()
        srcv = self.any_data_array()
        dst = self.new_data_array()
        i = self.fresh("i")
        return (
            f"for ({i} = 0; {i} < {self.ub()}; {i}++) "
            f"{dst}[{i}] = {srcv}[{idx}[{i}]] + {self.value_expr(i)};"
        )

    def seg_plain(self) -> str:
        dst = self.any_data_array()
        i = self.fresh("i")
        return (
            f"for ({i} = 0; {i} < {self.ub()}; {i}++) "
            f"{dst}[{self.subscript(i)}] = {self.value_expr(i)};"
        )

    def seg_reduction(self) -> str:
        acc = self.new_scalar(0)
        src = self.any_data_array()
        i = self.fresh("i")
        return (
            f"{acc} = 0;\n"
            f"for ({i} = 0; {i} < {self.ub()}; {i}++) "
            f"{acc} = {acc} + {src}[{i}];"
        )

    def seg_nested(self) -> str:
        dst = self.any_data_array()
        src = self.any_data_array()
        i, j = self.fresh("i"), self.fresh("j")
        return (
            f"for ({i} = 0; {i} < {self.ub()}; {i}++) {{\n"
            f"  for ({j} = 0; {j} < {self.ub()}; {j}++) {{\n"
            f"    {dst}[{i}] = {dst}[{i}] + {src}[{j}];\n"
            f"  }}\n"
            f"}}"
        )

    def seg_guarded_elementwise(self) -> str:
        """``if``-guarded elementwise body: the masked vectorization tier.

        Mixes short-circuit conjunctions/disjunctions, effectful and
        side-effect-free guarded right-hand sides, and optional else
        branches.
        """
        dst = self.any_data_array()
        src = self.any_data_array()
        i = self.fresh("i")
        c = self.rng.randint(-3, 3)
        cond = f"{src}[{i}] > {c}"
        r = self.rng.random()
        if r < 0.3:
            cond = f"{cond} && {self.any_data_array()}[{i}] < {self.rng.randint(4, 9)}"
        elif r < 0.5:
            cond = f"{cond} || {self.any_data_array()}[{i}] == {self.rng.randint(0, 3)}"
        then = f"{dst}[{i}] = {self.value_expr(i)};"
        if self.rng.random() < 0.4:
            acc = self.new_scalar(0)
            then = f"{{ {then} {acc} = {acc} + {self.value_expr(i, 2)}; }}"
        els = ""
        if self.rng.random() < 0.5:
            els = f"\n  else {dst}[{i}] = {self.value_expr(i, 2)};"
        return (
            f"for ({i} = 0; {i} < {self.ub()}; {i}++) {{\n"
            f"  if ({cond}) {then}{els}\n"
            f"}}"
        )

    def seg_csr_nest(self) -> str:
        """CSR-shaped nest over a monotonic row pointer: the segmented tier.

        The row pointer is built nondecreasing (empty rows included) so
        the inner ``rp[i] .. rp[i+1]`` ranges tile a prefix of the data
        arrays; zero-trip rows are common by construction.
        """
        rp = self.fresh("rp")
        vals = [0]
        for _ in range(self.n):
            vals.append(min(vals[-1] + self.rng.randint(0, 3), self.bound - 1))
        vals += [vals[-1]] * (self.bound - len(vals))
        self.env[rp] = np.array(vals, dtype=np.int64)
        self.index_arrays.append(rp)
        data = self.any_data_array()
        dst = self.new_data_array()
        i, j = self.fresh("i"), self.fresh("j")
        t = self.new_scalar(0)
        body = f"{t} = {t} + {data}[{j}];"
        if self.rng.random() < 0.3:
            body = f"{t} = {t} + {data}[{j}] * {self.any_data_array()}[{i}];"
        return (
            f"for ({i} = 0; {i} < {self.ub()}; {i}++) {{\n"
            f"  {t} = 0;\n"
            f"  for ({j} = {rp}[{i}]; {j} < {rp}[{i} + 1]; {j}++) {{\n"
            f"    {body}\n"
            f"  }}\n"
            f"  {dst}[{i}] = {t};\n"
            f"}}"
        )

    def seg_fusable_pair(self) -> str:
        """Adjacent producer/consumer loops over the same iteration space.

        The producer fills ``t[i]`` elementwise; the consumer reads
        ``t[j]`` at the same offset.  This is exactly the shape the
        fusion pass targets, so the fuzz gate exercises propose → check
        → fuse → execute on random bodies (checker-accepted fused loops
        must stay race-free and output-equivalent).  The shared symbolic
        bound keeps the headers fingerprint-equal.
        """
        t = self.new_data_array()
        dst = self.new_data_array()
        ub = self.ub()
        i, j = self.fresh("i"), self.fresh("j")
        prod_rhs = self.value_expr(i, depth=1)
        cons = f"{dst}[{j}] = {t}[{j}] + {self.value_expr(j, 2)};"
        if self.rng.random() < 0.3:
            acc = self.new_scalar(0)
            cons = f"{acc} = {acc} + {t}[{j}];"
        parts = [
            f"for ({i} = 0; {i} < {ub}; {i}++) {t}[{i}] = {prod_rhs};",
            f"for ({j} = 0; {j} < {ub}; {j}++) {cons}",
        ]
        if self.rng.random() < 0.3:
            k = self.fresh("k")
            parts.append(
                f"for ({k} = 0; {k} < {ub}; {k}++) "
                f"{self.new_data_array()}[{k}] = {dst}[{k}] * 2;"
            )
        return "\n".join(parts)

    def seg_almost_monotonic_scatter(self) -> str:
        """Env-provided index array that is monotone except (maybe) one spot.

        The array arrives through the environment, so the static analysis
        can prove nothing about it and the scatter consumer lands in the
        speculative inspector-executor tier: a dispatch-time monotonicity
        scan decides between the compiled-parallel and serial arms.  Half
        the time the fill is genuinely strictly increasing (inspector
        passes, parallel arm); otherwise exactly one position violates
        monotonicity (inspector fails, serial arm).  Either way every
        value stays in ``[0, bound)`` so execution is safe, and the race
        check validates whichever arm actually ran.
        """
        idx = self.fresh("idx")
        self.index_arrays.append(idx)
        # the inspector scans the whole array, so a strictly increasing
        # fill over [0, bound) has to be exactly 0..bound-1
        vals = list(range(self.bound))
        if self.rng.random() < 0.5:
            # violate exactly one interior position (stay nonnegative)
            p = self.rng.randint(1, self.bound - 1)
            vals[p] = max(vals[p - 1] - self.rng.randint(1, 2), 0)
        self.env[idx] = np.array(vals, dtype=np.int64)
        dst = self.any_data_array()
        srcv = self.any_data_array()
        i = self.fresh("i")
        return (
            f"for ({i} = 0; {i} < {self.ub()}; {i}++) "
            f"{dst}[{idx}[{i}]] = {dst}[{idx}[{i}]] + {srcv}[{i}];"
        )

    def seg_while(self) -> str:
        # ineligible construct: the analysis must fall back conservatively
        dst = self.any_data_array()
        j = self.new_scalar(0)
        step = self.rng.choice([1, 2, 3])
        return (
            f"{j} = 0;\n"
            f"while ({j} < {self.ub()}) {{\n"
            f"  {dst}[{j}] = {j};\n"
            f"  {j} = {j} + {step};\n"
            f"}}"
        )

    def seg_break(self) -> str:
        dst = self.any_data_array()
        i = self.fresh("i")
        return (
            f"for ({i} = 0; {i} < {self.ub()}; {i}++) {{\n"
            f"  {dst}[{i}] = {self.value_expr(i)};\n"
            f"  if ({dst}[{i}] > {self.rng.randint(20, 60)}) break;\n"
            f"}}"
        )

    SEGMENTS = (
        ("affine_fill", 3),
        ("counter_fill", 3),
        ("recurrence_fill", 2),
        ("scatter", 3),
        ("gather", 3),
        ("plain", 3),
        ("reduction", 1),
        ("nested", 2),
        ("guarded_elementwise", 3),
        ("csr_nest", 3),
        ("fusable_pair", 3),
        ("almost_monotonic_scatter", 2),
        ("while", 1),
        ("break", 1),
    )

    def program(self) -> str:
        names = [name for name, w in self.SEGMENTS for _ in range(w)]
        parts = []
        for _ in range(self.rng.randint(2, 5)):
            seg = getattr(self, "seg_" + self.rng.choice(names))
            parts.append(seg())
        return "\n".join(parts) + "\n"


def generate(seed: int) -> FuzzProgram:
    """Deterministically generate one safe-to-execute fuzz program."""
    g = _Gen(random.Random(seed))
    src = g.program()
    return FuzzProgram(seed=seed, source=src, env=g.env)


def corpus(count: int, base_seed: int = 0) -> List[FuzzProgram]:
    """The fixed fuzz corpus: seeds ``base_seed .. base_seed+count-1``."""
    return [generate(base_seed + k) for k in range(count)]


# --------------------------------------------------------------------------
# known-racy productions (negative corpus for the static classifier)
# --------------------------------------------------------------------------


def racy_corpus(count: int = 12, base_seed: int = 10_000) -> List[FuzzProgram]:
    """Deterministic programs whose candidate loop is *known racy*.

    Each program's final loop carries a genuine cross-iteration conflict:
    an overlapping scatter through a non-injective index array, a
    loop-invariant store, or a cross-chunk accumulation that is not a
    recognized privatizable reduction.  The static chunk-race classifier
    must answer ``overlapping`` or ``unknown`` for these — never
    ``chunk-disjoint`` (that is the negative half of the agreement gate).
    """
    out: List[FuzzProgram] = []
    for k in range(count):
        rng = random.Random(base_seed + k)
        n = rng.randint(6, 12)
        shape = k % 4
        if shape == 0:
            # overlapping scatter: random (non-injective) index array
            idx = [rng.randrange(max(2, n // 2)) for _ in range(n)]
            src = f"for (i = 0; i < n; i++) a[idx[i]] = a[idx[i]] + i;\n"
            env = {
                "n": n,
                "idx": np.array(idx, dtype=np.int64),
                "a": np.zeros(n, dtype=np.int64),
            }
        elif shape == 1:
            # non-injective index array built in-program (MA, not SMA)
            src = (
                "for (i = 0; i < n; i++) idx[i] = i / 2;\n"
                "for (j = 0; j < n; j++) a[idx[j]] = j;\n"
            )
            env = {
                "n": n,
                "idx": np.zeros(n, dtype=np.int64),
                "a": np.zeros(n, dtype=np.int64),
            }
        elif shape == 2:
            # cross-chunk accumulation into one element, no privatization
            src = f"for (i = 0; i < n; i++) acc[0] = acc[0] + a[i] * {rng.randint(1, 3)};\n"
            env = {
                "n": n,
                "acc": np.zeros(1, dtype=np.int64),
                "a": np.arange(n, dtype=np.int64),
            }
        else:
            # loop-invariant store: every iteration writes the same cell
            c = rng.randrange(n)
            src = f"for (i = 0; i < n; i++) a[{c}] = i;\n"
            env = {"n": n, "a": np.zeros(n, dtype=np.int64)}
        out.append(FuzzProgram(seed=base_seed + k, source=src, env=env))
    return out
