"""Crash-free fuzz gate.

Every seeded program must flow through the full pipeline with zero
uncaught exceptions (the fail-soft engine converts internal faults into
diagnostics + conservative serial decisions), and every loop the pipeline
marks parallel must pass the dynamic race checker — the executable
soundness invariant.

The corpus is fixed-seed, so the gate is deterministic; ``REPRO_FUZZ_COUNT``
scales it (default 500, a few seconds).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.analysis import AnalysisConfig
from repro.budget import AnalysisBudget
from repro.lang.astnodes import For
from repro.parallelizer import parallelize
from repro.runtime.parexec import IndexNotFound
from repro.runtime.racecheck import check_loop_races

from tests.fuzz.gen import generate

FUZZ_COUNT = int(os.environ.get("REPRO_FUZZ_COUNT", "500"))
SHARDS = 10


def _shard_seeds(shard: int):
    return range(shard, FUZZ_COUNT, SHARDS)


def _top_parallel_loops(result):
    out = []
    for stmt in result.program.stmts:
        if isinstance(stmt, For):
            d = result.decisions.get(stmt.loop_id or "")
            if d is not None and d.parallel:
                out.append((stmt, d))
    return out


def _checks_hold(prog, loop, env, checks) -> bool:
    """Evaluate a decision's runtime checks at the loop's entry point.

    A parallel decision with an ``if(...)`` clause only promises race
    freedom when the clause holds — OpenMP runs the loop serially
    otherwise, so the gate must do the same.
    """
    from repro.lang.cparser import parse_expr
    from repro.runtime.interp import Interpreter

    if not checks:
        return True
    interp = Interpreter(env)
    for s in prog.stmts:
        if s is loop:
            break
        interp.exec_stmt(s)
    # synthesized `X_max` symbols denote counter X's post-fill value, which
    # at the consumer's entry point is simply X's current value
    state = dict(interp.env)
    for name, val in list(state.items()):
        if isinstance(val, (int, np.integer)):
            state.setdefault(f"{name}_max", val)
    checker = Interpreter(state)
    return all(bool(checker.eval(parse_expr(c.text))) for c in checks)


@pytest.mark.parametrize("shard", range(SHARDS))
def test_fuzz_corpus_never_crashes_and_parallel_loops_are_race_free(shard):
    config = AnalysisConfig.new_algorithm()
    for seed in _shard_seeds(shard):
        fp = generate(seed)
        # crash-freedom: any internal fault must surface as a diagnostic,
        # never as an exception
        try:
            result = parallelize(fp.source, config)
        except Exception as exc:  # pragma: no cover - the gate's whole point
            pytest.fail(f"seed {seed}: parallelize raised {type(exc).__name__}: {exc}\n{fp.source}")
        for d in result.diagnostics:
            assert d.kind, f"seed {seed}: diagnostic without kind"
        # soundness: parallel-marked top-level loops must be race-free on a
        # real execution (when their runtime if-clause, if any, holds)
        for loop, dec in _top_parallel_loops(result):
            if not _checks_hold(result.program, loop, fp.fresh_env(), dec.checks):
                continue
            try:
                rep = check_loop_races(result.program, loop, fp.fresh_env())
            except IndexNotFound as exc:
                # non-canonical for-header: skip this loop, don't abort the gate
                print(f"seed {seed}: loop {loop.loop_id} skipped ({exc})")
                continue
            assert rep.clean, (
                f"seed {seed}: loop {loop.loop_id} marked parallel but races: "
                + "; ".join(str(c) for c in rep.conflicts)
                + f"\n{fp.source}"
            )


@pytest.mark.parametrize("shard", range(SHARDS))
def test_fuzz_corpus_classical_pipeline_never_crashes(shard):
    config = AnalysisConfig.classical()
    for seed in _shard_seeds(shard):
        fp = generate(seed)
        result = parallelize(fp.source, config)
        for loop, dec in _top_parallel_loops(result):
            if not _checks_hold(result.program, loop, fp.fresh_env(), dec.checks):
                continue
            try:
                rep = check_loop_races(result.program, loop, fp.fresh_env())
            except IndexNotFound as exc:
                print(f"seed {seed}: loop {loop.loop_id} skipped ({exc})")
                continue
            assert rep.clean, f"seed {seed}: classical marked racy loop parallel"


def test_fuzz_corpus_under_tight_budget_never_crashes():
    """Budgeted analysis degrades (diagnostics + serial), never raises."""
    import dataclasses

    budget = AnalysisBudget(max_expr_nodes=40, max_simplify_steps=200)
    config = dataclasses.replace(AnalysisConfig.new_algorithm(), budget=budget)
    for seed in range(0, FUZZ_COUNT, 10):
        fp = generate(seed)
        result = parallelize(fp.source, config)
        # budget stops must serialize the affected nest
        for d in result.diagnostics:
            if d.kind == "budget-exceeded" and d.nest_id:
                dec = result.decisions.get(d.nest_id)
                assert dec is not None and not dec.parallel


def test_corpus_is_deterministic():
    a, b = generate(123), generate(123)
    assert a.source == b.source
    assert set(a.env) == set(b.env)


def test_corpus_is_executable():
    """Every program runs under the interpreter without faulting."""
    from repro.lang.cparser import parse_program
    from repro.runtime.interp import run_program

    for seed in range(0, FUZZ_COUNT, 25):
        fp = generate(seed)
        run_program(parse_program(fp.source), fp.fresh_env())
