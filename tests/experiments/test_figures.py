"""Qualitative reproduction checks for every table and figure of §4.

These tests pin the *shape* the paper reports: who wins, by roughly what
factor, where the crossovers fall (see EXPERIMENTS.md for the
paper-vs-measured numbers).
"""

import pytest

from repro.benchmarks import get_benchmark
from repro.experiments.fig13 import fig13_cells
from repro.experiments.fig14 import fig14_cells
from repro.experiments.fig15 import fig15_cells
from repro.experiments.fig16 import fig16_cells
from repro.experiments.fig17 import fig17_cells, improved_counts, improvements_by_benchmark
from repro.experiments.harness import run_benchmark
from repro.experiments.table1 import table1_rows


@pytest.fixture(scope="module")
def f13():
    return fig13_cells()


@pytest.fixture(scope="module")
def f14():
    return fig14_cells()


@pytest.fixture(scope="module")
def f17():
    return fig17_cells()


class TestTable1:
    def test_twelve_benchmarks(self):
        assert len({r[0] for r in table1_rows()}) == 12

    def test_row_count(self):
        # 5 AMG + 1 CHOLMOD + 4 SDDMM + 4 UA + 3 CG + 1*4 polybench + 3 MG
        # + 2 IS + 1 IncChol = matches the datasets we ship
        assert len(table1_rows()) >= 20

    def test_known_serial_times(self):
        rows = {(r[0], r[2]): r[3] for r in table1_rows()}
        assert rows[("AMGmk", "MATRIX2")] == 3.112
        assert rows[("SDDMM", "dielFilterV2clx")] == 1.17
        assert rows[("CG", "B")] == 40.51


class TestFig13:
    def test_improvement_always_positive(self, f13):
        assert all(c.improvement > 1.0 for c in f13)

    def test_amg_improvement_tens_fold(self, f13):
        amg16 = [c.improvement for c in f13 if c.app == "AMGmk" and c.cores == 16]
        # paper: up to 58x; same order of magnitude required
        assert all(20 <= v <= 120 for v in amg16)

    def test_sddmm_improvement_moderate(self, f13):
        v = [c.improvement for c in f13 if c.app == "SDDMM" and c.cores == 16]
        assert max(v) >= 5  # paper: 9.87x max

    def test_ua_improvement(self, f13):
        v = [c.improvement for c in f13 if c.app == "UA(transf)" and c.cores == 16]
        assert max(v) >= 8  # paper: 11.56x max

    def test_improvement_grows_with_cores(self, f13):
        per = {}
        for c in f13:
            per.setdefault((c.app, c.dataset), {})[c.cores] = c.improvement
        for cells in per.values():
            assert cells[4] <= cells[8] <= cells[16]


class TestFig14:
    def test_amg_peak_speedup_close_to_paper(self, f14):
        best = max(c.improvement for c in f14 if c.app == "AMGmk")
        assert 2.8 <= best <= 4.2  # paper: 3.43x

    def test_sddmm_peak_speedup(self, f14):
        best = max(c.improvement for c in f14 if c.app == "SDDMM")
        assert 6.0 <= best <= 10.5  # paper: 8.48x

    def test_ua_peak_speedup(self, f14):
        best = max(c.improvement for c in f14 if c.app == "UA(transf)")
        assert 6.0 <= best <= 10.0  # paper: 7.741x

    def test_all_speedups_beat_serial(self, f14):
        assert all(c.improvement > 1.0 for c in f14)


class TestFig15:
    def test_efficiency_declines_with_cores(self):
        per = {}
        for c in fig15_cells():
            per.setdefault((c.app, c.dataset), {})[c.cores] = c.efficiency
        for cells in per.values():
            assert cells[4] >= cells[8] >= cells[16]

    def test_amg_has_lowest_16core_efficiency(self):
        at16 = {}
        for c in fig15_cells():
            if c.cores == 16:
                at16.setdefault(c.app, []).append(c.efficiency)
        assert max(at16["AMGmk"]) < min(max(at16["SDDMM"]), max(at16["UA(transf)"]))


class TestFig16:
    @pytest.fixture(scope="class")
    def cells(self):
        return fig16_cells(chunk=32)

    def test_dynamic_beats_static_for_skewed(self, cells):
        per = {}
        for c in cells:
            per[(c.dataset, c.cores, c.schedule)] = c.improvement
        for ds in ("gsm_106857", "dielFilterV2clx", "inline_1"):
            assert per[(ds, 16, "dynamic")] > per[(ds, 16, "static")]

    def test_static_wins_for_af_shell1(self, cells):
        per = {}
        for c in cells:
            per[(c.dataset, c.cores, c.schedule)] = c.improvement
        assert per[("af_shell1", 16, "static")] >= per[("af_shell1", 16, "dynamic")]

    def test_dynamic_advantage_grows_with_cores(self, cells):
        per = {}
        for c in cells:
            per[(c.dataset, c.cores, c.schedule)] = c.improvement
        ratios = [
            per[("gsm_106857", p, "dynamic")] / per[("gsm_106857", p, "static")]
            for p in (4, 8, 16)
        ]
        assert ratios[0] < ratios[2]


class TestFig17:
    def test_headline_counts(self, f17):
        """The paper's central claim: 6/12 classical, 7/12 base, 10/12 new."""
        counts = improved_counts(f17)
        assert counts["Cetus"] == 6
        assert counts["Cetus+BaseAlgo"] == 7
        assert counts["Cetus+NewAlgo"] == 10

    def test_newalgo_adds_exactly_the_three_apps(self, f17):
        table = improvements_by_benchmark(f17)
        for bench in ("AMGmk", "SDDMM", "UA(transf)"):
            assert table[bench]["Cetus+NewAlgo"] > 1.5
            assert table[bench]["Cetus+BaseAlgo"] <= 1.1

    def test_basealgo_adds_cholmod(self, f17):
        table = improvements_by_benchmark(f17)
        assert table["CHOLMOD-Supernodal"]["Cetus"] <= 1.05
        assert table["CHOLMOD-Supernodal"]["Cetus+BaseAlgo"] > 1.5

    def test_is_and_icholesky_never_improve(self, f17):
        table = improvements_by_benchmark(f17)
        for bench in ("IS", "Incomplete-Cholesky"):
            for pipe in table[bench]:
                assert table[bench][pipe] <= 1.1

    def test_classical_benchmarks_equal_across_pipelines(self, f17):
        table = improvements_by_benchmark(f17)
        for bench in ("CG", "heat-3d", "fdtd-2d", "gramschmidt", "syrk", "MG"):
            vals = list(table[bench].values())
            assert max(vals) - min(vals) < 1e-9

    def test_amg_classical_is_catastrophic(self, f17):
        """Fork-join per row makes the classical AMG slower than serial."""
        table = improvements_by_benchmark(f17)
        assert table["AMGmk"]["Cetus"] < 0.5


class TestHarness:
    def test_run_benchmark_cell(self):
        bench = get_benchmark("AMGmk")
        run = run_benchmark(bench, "MATRIX1", "Cetus+NewAlgo", 8)
        assert run.speedup > 1
        assert run.plan_level == "outer"
        assert run.efficiency == pytest.approx(run.speedup / 8)
