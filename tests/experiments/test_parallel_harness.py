"""Parallel experiment harness: determinism, jobs resolution, cache reuse.

The fan-out must be invisible in the output: every figure table produced by
the process pool has to be cell-for-cell identical to the serial path, and
``REPRO_JOBS=1`` must force the serial loop.
"""

import dataclasses

import pytest

from repro.experiments import harness
from repro.experiments.fig13 import fig13_cells
from repro.experiments.harness import CellSpec, resolved_jobs, run_cell, run_cells


class TestJobsResolution:
    def test_explicit_jobs_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolved_jobs(3) == 3

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolved_jobs() == 5

    def test_repro_jobs_1_forces_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "1")
        assert resolved_jobs() == 1
        # with one job the pool must never be constructed
        def boom(*a, **kw):  # pragma: no cover - only hit on failure
            raise AssertionError("ProcessPoolExecutor used despite REPRO_JOBS=1")

        monkeypatch.setattr(harness, "ProcessPoolExecutor", boom)
        specs = [CellSpec("AMGmk", None, "Cetus+NewAlgo", p) for p in (4, 8)]
        runs = run_cells(specs)
        assert [r.cores for r in runs] == [4, 8]

    def test_garbage_env_names_the_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "garbage")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            resolved_jobs()

    def test_zero_clamps_to_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert resolved_jobs() == 1

    def test_default_is_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        import os

        assert resolved_jobs() == (os.cpu_count() or 1)


class TestParallelMatchesSerial:
    def test_run_cells_order_and_values(self):
        specs = [
            CellSpec("AMGmk", "MATRIX1", "Cetus+NewAlgo", p, sched)
            for p in (4, 8, 16)
            for sched in ("static", "dynamic")
        ]
        serial = run_cells(specs, jobs=1)
        parallel = run_cells(specs, jobs=2)
        assert [dataclasses.astuple(r) for r in parallel] == [
            dataclasses.astuple(r) for r in serial
        ]

    def test_fig13_parallel_identical_to_serial(self):
        serial = fig13_cells(jobs=1)
        parallel = fig13_cells(jobs=2)
        assert len(serial) == len(parallel)
        for a, b in zip(serial, parallel):
            assert dataclasses.astuple(a) == dataclasses.astuple(b)

    def test_single_cell_stays_serial(self):
        (run,) = run_cells([CellSpec("SDDMM", "af_shell1", "Cetus", 8)], jobs=16)
        assert run.benchmark == "SDDMM"
        assert run.cores == 8

    def test_cell_spec_roundtrip(self):
        spec = CellSpec("UA(transf)", "B", "Cetus+NewAlgo", 16, "dynamic", 4)
        run = run_cell(spec)
        assert (run.benchmark, run.dataset, run.pipeline, run.cores, run.schedule) == (
            "UA(transf)",
            "B",
            "Cetus+NewAlgo",
            16,
            "dynamic",
        )


class TestFaultTolerance:
    """The fan-out is fail-soft: pool failures are *logged* (never silent)
    and degraded to serial retries; timed-out or doubly-failing cells
    become FailedCell holes instead of killing the whole table."""

    SPECS = [CellSpec("AMGmk", None, "Cetus+NewAlgo", p) for p in (4, 8)]

    def test_pool_startup_failure_warns_and_runs_serially(self, monkeypatch, caplog):
        import logging

        def denied(*a, **kw):
            raise PermissionError("no process support in this sandbox")

        monkeypatch.setattr(harness, "ProcessPoolExecutor", denied)
        with caplog.at_level(logging.WARNING, logger="repro.experiments.harness"):
            runs = run_cells(self.SPECS, jobs=4)
        assert [r.cores for r in runs] == [4, 8]
        assert all(isinstance(r, harness.BenchRun) for r in runs)
        warnings = [r for r in caplog.records if r.levelno >= logging.WARNING]
        assert len(warnings) == 1
        assert "no process support" in warnings[0].getMessage()

    def test_broken_pool_warns_once_and_retries_serially(self, monkeypatch, caplog):
        """Regression: a BrokenProcessPool used to silently fall back to
        the serial path with no trace of the triggering exception."""
        import logging

        from concurrent.futures.process import BrokenProcessPool

        class FakeFuture:
            def result(self, timeout=None):
                raise BrokenProcessPool("a child process terminated abruptly")

            def cancel(self):
                return False

        class FakePool:
            def __init__(self, *a, **kw):
                pass

            def submit(self, fn, *args):
                return FakeFuture()

            def shutdown(self, wait=True, cancel_futures=False):
                pass

        monkeypatch.setattr(harness, "ProcessPoolExecutor", FakePool)
        with caplog.at_level(logging.WARNING, logger="repro.experiments.harness"):
            runs = run_cells(self.SPECS, jobs=4)
        # every cell was retried serially and produced a real result
        assert [r.cores for r in runs] == [4, 8]
        assert all(isinstance(r, harness.BenchRun) for r in runs)
        pool_warnings = [
            r
            for r in caplog.records
            if r.levelno >= logging.WARNING and "worker pool broke" in r.getMessage()
        ]
        assert len(pool_warnings) == 1  # warned once, not once per cell
        assert "terminated abruptly" in pool_warnings[0].getMessage()

    def test_cell_timeout_yields_failed_cell(self, monkeypatch, caplog):
        import logging

        from concurrent.futures import TimeoutError as FutureTimeoutError

        class SlowFuture:
            def result(self, timeout=None):
                raise FutureTimeoutError()

            def cancel(self):
                return True

        class FakePool:
            def __init__(self, *a, **kw):
                pass

            def submit(self, fn, *args):
                return SlowFuture()

            def shutdown(self, wait=True, cancel_futures=False):
                assert not wait  # a hung worker must not block shutdown

        monkeypatch.setattr(harness, "ProcessPoolExecutor", FakePool)
        with caplog.at_level(logging.WARNING, logger="repro.experiments.harness"):
            runs = run_cells(self.SPECS, jobs=4, cell_timeout=0.5)
        assert all(isinstance(r, harness.FailedCell) for r in runs)
        assert all("timed out" in r.error for r in runs)
        # identity fields survive so figure tables keep their geometry
        assert [r.cores for r in runs] == [4, 8]

    def test_worker_crash_retries_serially_then_fails_soft(self, monkeypatch, caplog):
        import logging

        class CrashFuture:
            def result(self, timeout=None):
                raise RuntimeError("worker exploded")

            def cancel(self):
                return False

        class FakePool:
            def __init__(self, *a, **kw):
                pass

            def submit(self, fn, *args):
                return CrashFuture()

            def shutdown(self, wait=True, cancel_futures=False):
                pass

        monkeypatch.setattr(harness, "ProcessPoolExecutor", FakePool)
        with caplog.at_level(logging.WARNING, logger="repro.experiments.harness"):
            runs = run_cells(self.SPECS, jobs=4)
        # the serial retry succeeds (the crash was worker-side only)
        assert all(isinstance(r, harness.BenchRun) for r in runs)

    def test_failed_cell_ducktypes_benchrun_and_renders(self):
        import math

        cell = harness._failed_cell(self.SPECS[0], "boom")
        assert math.isnan(cell.speedup) and math.isnan(cell.efficiency)
        assert cell.plan_level == "failed"
        table = harness.format_runs([run_cell(self.SPECS[1]), cell])
        assert "FAIL" in table  # holes render, tables never crash

    def test_serial_cell_crash_becomes_failed_cell(self, monkeypatch, caplog):
        import logging

        def boom(spec):
            raise ValueError("bad cell")

        monkeypatch.setattr(harness, "run_cell", boom)
        with caplog.at_level(logging.WARNING, logger="repro.experiments.harness"):
            runs = run_cells(self.SPECS, jobs=1)
        assert all(isinstance(r, harness.FailedCell) for r in runs)
        assert all("ValueError" in r.error for r in runs)

    def test_cell_timeout_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_CELL_TIMEOUT", "2.5")
        assert harness.resolved_cell_timeout() == 2.5
        assert harness.resolved_cell_timeout(7.0) == 7.0  # explicit arg wins
        monkeypatch.setenv("REPRO_CELL_TIMEOUT", "0")
        assert harness.resolved_cell_timeout() is None
        monkeypatch.setenv("REPRO_CELL_TIMEOUT", "junk")
        with pytest.raises(ValueError, match="REPRO_CELL_TIMEOUT"):
            harness.resolved_cell_timeout()


class TestWorkerStatsAggregation:
    """Worker-side perfstats ship back over the reply pipe, so ``--stats``
    aggregates the whole run without forcing ``REPRO_JOBS=1``."""

    def test_run_cell_stats_returns_counter_deltas(self):
        from repro.ir import perfstats

        spec = CellSpec("AMGmk", None, "Cetus+NewAlgo", 4)
        result, counts, tiers, falls = harness._run_cell_stats(spec)
        assert result.benchmark == "AMGmk"
        # only non-zero deltas travel, and every name is a real counter
        assert all(v != 0 for v in counts.values())
        assert all(name in perfstats.Counters.__slots__ for name in counts)

    def test_merge_cell_stats_folds_into_parent(self):
        from repro.ir import perfstats

        spec = CellSpec("AMGmk", None, "Cetus+NewAlgo", 8)
        payload = harness._run_cell_stats(spec)
        fake = (payload[0], {"analysis_misses": 3, "unknown_counter": 9},
                {"vectorized": 2}, {"why": 1})
        before = perfstats.STATS.analysis_misses
        tier_before = perfstats.TIERS.get("vectorized", 0)
        result = harness._merge_cell_stats(fake)
        assert result.benchmark == "AMGmk"
        assert perfstats.STATS.analysis_misses == before + 3
        assert perfstats.TIERS.get("vectorized", 0) == tier_before + 2
        assert perfstats.FALLBACKS.get("why", 0) >= 1

    def test_pooled_run_cells_surfaces_worker_counters(self):
        """End to end: with jobs>1 the parent's counters still move —
        the workers' analysis/cache activity is merged, not lost."""
        from repro.ir import perfstats

        specs = [
            CellSpec("AMGmk", "MATRIX1", "Cetus+NewAlgo", p) for p in (4, 8)
        ]
        perfstats.reset_counters()
        runs = run_cells(specs, jobs=2)
        assert [r.cores for r in runs] == [4, 8]
        moved = perfstats.STATS.as_dict()
        assert sum(abs(v) for v in moved.values()) > 0, (
            "jobs=2 run left every parent counter at zero: worker stats "
            "were not aggregated"
        )
