"""Parallel experiment harness: determinism, jobs resolution, cache reuse.

The fan-out must be invisible in the output: every figure table produced by
the process pool has to be cell-for-cell identical to the serial path, and
``REPRO_JOBS=1`` must force the serial loop.
"""

import dataclasses

import pytest

from repro.experiments import harness
from repro.experiments.fig13 import fig13_cells
from repro.experiments.harness import CellSpec, resolved_jobs, run_cell, run_cells


class TestJobsResolution:
    def test_explicit_jobs_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolved_jobs(3) == 3

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolved_jobs() == 5

    def test_repro_jobs_1_forces_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "1")
        assert resolved_jobs() == 1
        # with one job the pool must never be constructed
        def boom(*a, **kw):  # pragma: no cover - only hit on failure
            raise AssertionError("ProcessPoolExecutor used despite REPRO_JOBS=1")

        monkeypatch.setattr(harness, "ProcessPoolExecutor", boom)
        specs = [CellSpec("AMGmk", None, "Cetus+NewAlgo", p) for p in (4, 8)]
        runs = run_cells(specs)
        assert [r.cores for r in runs] == [4, 8]

    def test_garbage_env_names_the_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "garbage")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            resolved_jobs()

    def test_zero_clamps_to_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert resolved_jobs() == 1

    def test_default_is_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        import os

        assert resolved_jobs() == (os.cpu_count() or 1)


class TestParallelMatchesSerial:
    def test_run_cells_order_and_values(self):
        specs = [
            CellSpec("AMGmk", "MATRIX1", "Cetus+NewAlgo", p, sched)
            for p in (4, 8, 16)
            for sched in ("static", "dynamic")
        ]
        serial = run_cells(specs, jobs=1)
        parallel = run_cells(specs, jobs=2)
        assert [dataclasses.astuple(r) for r in parallel] == [
            dataclasses.astuple(r) for r in serial
        ]

    def test_fig13_parallel_identical_to_serial(self):
        serial = fig13_cells(jobs=1)
        parallel = fig13_cells(jobs=2)
        assert len(serial) == len(parallel)
        for a, b in zip(serial, parallel):
            assert dataclasses.astuple(a) == dataclasses.astuple(b)

    def test_single_cell_stays_serial(self):
        (run,) = run_cells([CellSpec("SDDMM", "af_shell1", "Cetus", 8)], jobs=16)
        assert run.benchmark == "SDDMM"
        assert run.cores == 8

    def test_cell_spec_roundtrip(self):
        spec = CellSpec("UA(transf)", "B", "Cetus+NewAlgo", 16, "dynamic", 4)
        run = run_cell(spec)
        assert (run.benchmark, run.dataset, run.pipeline, run.cores, run.schedule) == (
            "UA(transf)",
            "B",
            "Cetus+NewAlgo",
            16,
            "dynamic",
        )
