"""Formatting/reporting coverage for the experiment harnesses."""


from repro.benchmarks import get_benchmark
from repro.experiments.harness import format_runs, run_benchmark, speedup_table
from repro.experiments.table1 import format_table1
from repro.analysis.properties import ArrayProperty, MonoKind, PropertyStore
from repro.ir.ranges import SymRange
from repro.ir.symbols import Sym


class TestHarnessFormat:
    def test_speedup_table_shape(self):
        bench = get_benchmark("AMGmk")
        runs = speedup_table(bench, ["MATRIX1"], ["Cetus+NewAlgo"], [4, 8])
        assert len(runs) == 2
        assert {r.cores for r in runs} == {4, 8}

    def test_format_runs_speedup(self):
        bench = get_benchmark("AMGmk")
        runs = speedup_table(bench, ["MATRIX1"], ["Cetus+NewAlgo"], [4, 16])
        text = format_runs(runs)
        assert "AMGmk" in text and "MATRIX1" in text
        assert text.count("\n") >= 1

    def test_format_runs_efficiency_metric(self):
        bench = get_benchmark("AMGmk")
        runs = speedup_table(bench, ["MATRIX1"], ["Cetus+NewAlgo"], [4])
        text = format_runs(runs, metric="efficiency")
        assert "0." in text

    def test_run_benchmark_default_dataset(self):
        bench = get_benchmark("syrk")
        run = run_benchmark(bench)
        assert run.dataset == "EXTRALARGE"
        assert run.pipeline == "Cetus+NewAlgo"

    def test_table1_contains_all_benchmarks(self):
        text = format_table1()
        for name in ("AMGmk", "SDDMM", "UA(transf)", "Incomplete-Cholesky"):
            assert name in text


class TestPropertyDisplay:
    def test_annotation_sma(self):
        p = ArrayProperty("a", MonoKind.SMA, dim=0)
        assert "SMA" in p.annotation()

    def test_annotation_none(self):
        p = ArrayProperty("a", MonoKind.NONE)
        assert p.annotation() == "⊥"

    def test_str_with_region(self):
        p = ArrayProperty(
            "a", MonoKind.MA, region=SymRange(0, Sym("m_max")), intermittent=True
        )
        s = str(p)
        assert "a[" in s and "intermittent" in s

    def test_store_keeps_stronger_kind(self):
        store = PropertyStore()
        store.record(ArrayProperty("a", MonoKind.SMA))
        store.record(ArrayProperty("a", MonoKind.MA))
        assert store.property_of("a").kind is MonoKind.SMA

    def test_store_upgrade_allowed(self):
        store = PropertyStore()
        store.record(ArrayProperty("a", MonoKind.MA))
        store.record(ArrayProperty("a", MonoKind.SMA))
        assert store.property_of("a").kind is MonoKind.SMA

    def test_kill_removes_all_dims(self):
        store = PropertyStore()
        store.record(ArrayProperty("a", MonoKind.SMA, dim=0))
        store.record(ArrayProperty("a", MonoKind.MA, dim=1))
        store.kill("a")
        assert store.any_property_of("a") is None

    def test_mono_kind_meet(self):
        assert MonoKind.SMA.meet(MonoKind.MA) is MonoKind.MA
        assert MonoKind.MA.meet(MonoKind.NONE) is MonoKind.NONE
        assert MonoKind.SMA.meet(MonoKind.SMA) is MonoKind.SMA
