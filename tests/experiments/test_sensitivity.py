"""The headline 6/7/10 result must not depend on one calibration point."""

from repro.experiments.sensitivity import improved_counts_under


def test_counts_stable_at_double_fork_cost():
    counts = improved_counts_under(2.0, 1.0)
    assert (counts["Cetus"], counts["Cetus+BaseAlgo"], counts["Cetus+NewAlgo"]) == (6, 7, 10)


def test_counts_stable_at_high_contention():
    counts = improved_counts_under(1.0, 1.3)
    assert (counts["Cetus"], counts["Cetus+BaseAlgo"], counts["Cetus+NewAlgo"]) == (6, 7, 10)


def test_counts_stable_at_cheap_fork():
    counts = improved_counts_under(0.5, 0.7)
    assert (counts["Cetus"], counts["Cetus+BaseAlgo"], counts["Cetus+NewAlgo"]) == (6, 7, 10)
