"""Shared fixtures for the runtime suite.

``leakcheck`` (autouse) makes every runtime test hermetic with respect to
the parallel pool: after each test the process-wide pool is shut down and
the fixture asserts that no shared-memory segment created here is still
registered and no child process survived.  A test that leaks either fails
itself instead of poisoning its neighbors (or ``/dev/shm``).
"""

import multiprocessing
import time

import pytest

from repro.runtime import faultplan, parbackend


@pytest.fixture(autouse=True)
def leakcheck():
    """Assert zero orphan shm segments and child processes per test."""
    before = {p.pid for p in multiprocessing.active_children()}
    yield
    faultplan.reset()
    parbackend.shutdown_pool()
    parbackend.reset_breaker()
    leaked_segments = parbackend.live_segments()
    assert not leaked_segments, (
        f"leaked shared-memory segments: {leaked_segments}"
    )
    # children get a short grace period to finish exiting after join()
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        survivors = [
            p for p in multiprocessing.active_children() if p.pid not in before
        ]
        if not survivors:
            break
        time.sleep(0.05)
    assert not survivors, f"surviving child processes: {survivors}"
