"""Performance-model tests: the structural relations the paper's figures
depend on must hold in the simulator."""

import numpy as np
import pytest

from repro.runtime.machine import DEFAULT_MACHINE, MachineModel
from repro.runtime.simulate import ComponentPlan, KernelComponent, ParallelPlan, PerfModel, serial_time, simulate_app


def make_perf(work=None, reps=1, contention=0.0, inner_extra=0.0, target=1.0):
    work = work if work is not None else np.ones(1000) * 100.0
    comp = KernelComponent(
        "k",
        (0,),
        work,
        reps=reps,
        level_trips=(len(work), 30),
        contention=contention,
        inner_region_extra=inner_extra,
    )
    return PerfModel(components=[comp], serial_time_target=target)


def test_serial_time_equals_target():
    perf = make_perf(target=3.5)
    assert serial_time(perf) == pytest.approx(3.5)


def test_outer_parallel_speeds_up():
    perf = make_perf()
    plan = ParallelPlan({"k": ComponentPlan("outer")})
    t4 = simulate_app(perf, plan, 4)
    t1 = serial_time(perf)
    assert t4 < t1


def test_speedup_monotone_in_threads_without_contention():
    perf = make_perf()
    plan = ParallelPlan({"k": ComponentPlan("outer")})
    times = [simulate_app(perf, plan, p) for p in (2, 4, 8, 16)]
    assert all(a >= b for a, b in zip(times, times[1:]))


def test_contention_caps_speedup():
    perf = make_perf(contention=0.25, target=1.0)
    plan = ParallelPlan({"k": ComponentPlan("outer")})
    t16 = simulate_app(perf, plan, 16)
    speedup = 1.0 / t16
    # p/(1+(p-1)β) = 16/4.75 ≈ 3.37
    assert speedup == pytest.approx(16 / (1 + 15 * 0.25), rel=0.05)


def test_inner_parallel_pays_fork_per_iteration():
    # tiny per-iteration work (~50ns): forking each iteration must be
    # slower than serial
    perf = make_perf(work=np.ones(100000) * 10.0, target=0.05)
    inner = ParallelPlan({"k": ComponentPlan("inner", depth=1)})
    t_inner = simulate_app(perf, inner, 16)
    assert t_inner > serial_time(perf)


def test_inner_vs_outer_gap_grows_with_threads():
    perf = make_perf(work=np.ones(100000) * 10.0, target=0.05)
    inner = ParallelPlan({"k": ComponentPlan("inner", depth=1)})
    outer = ParallelPlan({"k": ComponentPlan("outer")})
    ratios = [
        simulate_app(perf, inner, p) / simulate_app(perf, outer, p) for p in (4, 8, 16)
    ]
    assert ratios[0] < ratios[1] < ratios[2]


def test_inner_region_extra_increases_inner_cost():
    base = make_perf(work=np.ones(1000) * 10.0)
    extra = make_perf(work=np.ones(1000) * 10.0, inner_extra=5e-6)
    plan = ParallelPlan({"k": ComponentPlan("inner", depth=1)})
    assert simulate_app(extra, plan, 8) > simulate_app(base, plan, 8)


def test_dynamic_beats_static_on_clustered_skew():
    # clustered heavy region (like gsm_106857's columns)
    w = np.ones(20000)
    w[5000:7000] = 50.0
    perf = make_perf(work=w)
    plan = ParallelPlan({"k": ComponentPlan("outer")})
    t_static = simulate_app(perf, plan, 8, schedule="static")
    t_dynamic = simulate_app(perf, plan, 8, schedule="dynamic", chunk=16)
    assert t_dynamic < t_static


def test_static_beats_dynamic_on_balanced_load():
    perf = make_perf(work=np.ones(100000) * 5.0)
    plan = ParallelPlan({"k": ComponentPlan("outer")})
    t_static = simulate_app(perf, plan, 8, schedule="static")
    t_dynamic = simulate_app(perf, plan, 8, schedule="dynamic", chunk=1)
    assert t_static <= t_dynamic


def test_serial_plan_equals_serial_time():
    perf = make_perf()
    plan = ParallelPlan({"k": ComponentPlan("serial")})
    assert simulate_app(perf, plan, 16) == pytest.approx(serial_time(perf))


def test_single_thread_equals_serial():
    perf = make_perf()
    plan = ParallelPlan({"k": ComponentPlan("outer")})
    assert simulate_app(perf, plan, 1) == pytest.approx(serial_time(perf))


def test_serial_extra_ops_never_parallelized():
    comp = KernelComponent("k", (0,), np.ones(100), reps=1)
    perf = PerfModel(components=[comp], serial_time_target=1.0, serial_extra_ops=900.0)
    plan = ParallelPlan({"k": ComponentPlan("outer")})
    t16 = simulate_app(perf, plan, 16)
    # 90% of the time is serial: Amdahl caps the speedup near 1.1
    assert 1.0 / t16 < 1.2


def test_machine_model_validation():
    MachineModel().validate()
    with pytest.raises(ValueError):
        MachineModel(max_cores=0).validate()
    with pytest.raises(ValueError):
        MachineModel(fork_base=-1.0).validate()


def test_fork_cost_zero_for_one_thread():
    assert DEFAULT_MACHINE.fork_cost(1) == 0.0
    assert DEFAULT_MACHINE.fork_cost(8) > 0.0


def test_empty_perf_model_rejected():
    perf = PerfModel(components=[], serial_time_target=1.0)
    with pytest.raises(ValueError):
        perf.c_op
