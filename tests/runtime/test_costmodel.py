"""Execution cost model: calibration, prediction monotonicity, planning."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lang.cparser import parse_program
from repro.parallelizer import parallelize
from repro.analysis import AnalysisConfig
from repro.runtime import costmodel
from repro.runtime.compile import compile_program
from repro.runtime.costmodel import (
    MIN_PAR_TRIPS,
    Calibration,
    loop_trips,
    loop_work,
    plan_program,
    predict_interp,
    predict_parallel,
    predict_serial,
    program_prefers_interp,
)


def _fixed_cal() -> Calibration:
    """Deterministic calibration for unit tests (no micro-benchmarks)."""
    return Calibration(
        rates={
            "vectorized": 1e-9,
            "flattened": 1e-9,
            "masked": 3e-9,
            "segmented": 2e-9,
            "scalar": 1e-7,
            "interp": 2e-6,
        },
        overheads={t: 5e-6 for t in costmodel.VECTOR_TIERS} | {"scalar": 0.0},
        interp_rate=2e-6,
    )


class TestPredictionMonotonicity:
    """More work must never predict a cheaper time (linear, rates >= 0)."""

    @given(
        st.sampled_from(["vectorized", "masked", "segmented", "scalar"]),
        st.integers(0, 10**9),
        st.integers(0, 10**6),
    )
    @settings(max_examples=200, deadline=None)
    def test_serial_monotone_in_work(self, tier, work, delta):
        cal = _fixed_cal()
        assert predict_serial(cal, tier, work + delta) >= predict_serial(cal, tier, work)

    @given(
        st.sampled_from(["vectorized", "segmented", "scalar"]),
        st.integers(0, 10**9),
        st.integers(0, 10**6),
        st.integers(1, 64),
    )
    @settings(max_examples=200, deadline=None)
    def test_parallel_monotone_in_work(self, tier, work, delta, workers):
        cal = _fixed_cal()
        assert predict_parallel(cal, tier, work + delta, workers) >= predict_parallel(
            cal, tier, work, workers
        )

    @given(st.integers(0, 10**9), st.integers(0, 10**6))
    @settings(max_examples=100, deadline=None)
    def test_interp_monotone_in_work(self, work, delta):
        cal = _fixed_cal()
        assert predict_interp(cal, work + delta) >= predict_interp(cal, work)

    @given(st.sampled_from(["vectorized", "scalar"]), st.integers(0, 10**9))
    @settings(max_examples=100, deadline=None)
    def test_parallel_never_beats_free_dispatch(self, tier, work):
        """Pool time is bounded below by the dispatch overhead."""
        from repro.runtime.parbackend import dispatch_overhead_s

        cal = _fixed_cal()
        assert predict_parallel(cal, tier, work, 8) >= dispatch_overhead_s(8)


class TestCalibration:
    def test_measured_calibration_is_sane(self):
        cal = costmodel.get_calibration()
        for tier in ("vectorized", "masked", "segmented", "scalar"):
            assert cal.rate(tier) > 0
        # the interpreter is orders of magnitude slower per element than
        # a numpy lane; anything else means the micro-benchmarks broke
        assert cal.interp_rate > cal.rate("vectorized")

    def test_calibration_memoized_in_process(self):
        a = costmodel.get_calibration()
        b = costmodel.get_calibration()
        assert a is b

    def test_calibration_roundtrips_through_disk_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        costmodel.reset_calibration()
        try:
            first = costmodel.get_calibration()
            costmodel.reset_calibration()
            second = costmodel.get_calibration()
            # the second load must come from disk, not a re-measurement
            assert second == first
        finally:
            costmodel.reset_calibration()

    def test_unknown_tier_prices_as_scalar(self):
        cal = _fixed_cal()
        assert cal.rate("no-such-tier") == cal.rates["scalar"]

    def test_bitflipped_calibration_is_a_cold_start(self, tmp_path, monkeypatch):
        """A corrupted persisted calibration re-calibrates, never errors."""
        import glob
        import os

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        costmodel.reset_calibration()
        try:
            first = costmodel.get_calibration()
            entries = glob.glob(str(tmp_path / "costmodel" / "*" / "*.pkl"))
            assert entries, "calibration should have been persisted"
            for path in entries:
                with open(path, "rb") as fh:
                    blob = bytearray(fh.read())
                for off in (1, len(blob) // 2, len(blob) - 2):
                    blob[off] ^= 0xFF
                with open(path, "wb") as fh:
                    fh.write(bytes(blob))
            costmodel.reset_calibration()
            second = costmodel.get_calibration()  # cold start, no raise
            assert costmodel._calibration_valid(second)
            # the bad entry was dropped or overwritten by the fresh one
            for path in entries:
                assert (not os.path.exists(path)) or costmodel._calibration_valid(
                    costmodel.get_calibration()
                )
            _ = second.rate("vectorized"), first.rate("vectorized")
        finally:
            costmodel.reset_calibration()

    def test_stale_shaped_calibration_entry_is_a_cold_start(self, tmp_path, monkeypatch):
        """An entry that unpickles into the wrong shape is a cold start."""
        from repro import cache

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        key = (costmodel._machine_digest(), costmodel.CALIBRATION_VERSION)
        # an older layout: rates missing, NaN overheads — both invalid
        cache.store("costmodel", key, {"rates": {}})
        costmodel.reset_calibration()
        try:
            cal = costmodel.get_calibration()
            assert costmodel._calibration_valid(cal)
        finally:
            costmodel.reset_calibration()
        bad = Calibration(rates={"scalar": float("nan")}, overheads={}, interp_rate=1e-6)
        assert not costmodel._calibration_valid(bad)
        assert not costmodel._calibration_valid(None)
        assert not costmodel._calibration_valid({"rates": {}})


class TestWorkEvaluation:
    def test_trips_and_work_flat_loop(self):
        prog = parse_program("for (i = 0; i < n; i++) a[i] = i;")
        loop = prog.stmts[0]
        env = {"n": 100, "a": np.zeros(100)}
        assert loop_trips(loop, env) == 100
        assert loop_work(loop, env) == 100

    def test_csr_work_reads_row_pointer(self):
        prog = parse_program(
            "for (i = 0; i < n; i++) {\n"
            "  s = 0;\n"
            "  for (j = rp[i]; j < rp[i + 1]; j++) s = s + x[j];\n"
            "  out[i] = s;\n"
            "}"
        )
        loop = prog.stmts[0]
        rp = np.array([0, 3, 3, 10, 12], dtype=np.int64)
        env = {"n": 4, "rp": rp, "x": np.zeros(12), "out": np.zeros(4), "s": 0.0}
        # 4 outer trips + rp[4] - rp[0] = 12 inner elements
        assert loop_work(loop, env) == 16

    def test_unknown_bound_degrades_to_none(self):
        prog = parse_program("for (i = 0; i < n; i++) a[i] = i;")
        assert loop_trips(prog.stmts[0], {}) is None
        assert loop_work(prog.stmts[0], {}) is None


class TestPlanning:
    def _compiled(self, src):
        result = parallelize(src, AnalysisConfig.new_algorithm())
        return compile_program(result.program, result.decisions)

    def test_small_parallel_loop_stays_serial(self):
        cp = self._compiled("for (i = 0; i < n; i++) a[i] = i * 2;")
        n = MIN_PAR_TRIPS // 2
        env = {"n": n, "a": np.zeros(n)}
        plans = plan_program(cp, env, cal=_fixed_cal(), workers=8)
        assert len(plans) == 1
        assert plans[0].choice == "compiled"

    def test_huge_scalar_parallel_loop_goes_parallel(self):
        # scalar-rate pricing makes the pool dispatch overhead worth paying
        cp = self._compiled("for (i = 0; i < n; i++) a[i] = i * 2;")
        cal = _fixed_cal()
        n = 1 << 20
        env = {"n": n, "a": np.zeros(n)}
        cp.loop_tiers = {lid: "scalar" for lid in cp.loop_tiers}
        plans = plan_program(cp, env, cal=cal, workers=8)
        assert plans[0].choice == "compiled-parallel"
        assert plans[0].predicted["compiled-parallel"] < plans[0].predicted["compiled"]

    def test_serial_decision_never_goes_parallel(self):
        # scalar recurrence: the analysis refuses to parallelize it, so
        # the planner must not either, no matter the size
        cp = self._compiled(
            "s = 0;\nfor (i = 0; i < n; i++) s = s * 2 + b[i];"
        )
        n = 1 << 20
        env = {"n": n, "s": 0.0, "b": np.zeros(n)}
        plans = plan_program(cp, env, cal=_fixed_cal(), workers=8)
        assert all(p.choice == "compiled" for p in plans)

    def test_vector_tier_program_never_prefers_interp(self):
        cp = self._compiled("for (i = 0; i < n; i++) a[i] = i * 2;")
        env = {"n": 4, "a": np.zeros(4)}
        plans = plan_program(cp, env, cal=_fixed_cal(), workers=1)
        assert not program_prefers_interp(plans)

    def test_predictions_recorded_per_backend(self):
        cp = self._compiled("for (i = 0; i < n; i++) a[i] = i * 2;")
        n = 1 << 16
        env = {"n": n, "a": np.zeros(n)}
        plans = plan_program(cp, env, cal=_fixed_cal(), workers=4)
        p = plans[0]
        assert "compiled" in p.predicted and "interp" in p.predicted
        assert p.trips == n


class TestAutoBackendEndToEnd:
    def test_auto_matches_interp_output(self):
        from repro.runtime.compile import execute

        src = (
            "for (i = 0; i < n; i++) a[i] = i * 2;\n"
            "s = 0;\n"
            "for (j = 0; j < n; j++) s = s + a[j];"
        )
        result = parallelize(src, AnalysisConfig.new_algorithm())
        n = 1000
        env_auto = {"n": n, "a": np.zeros(n), "s": 0.0}
        env_ref = {"n": n, "a": np.zeros(n), "s": 0.0}
        execute(result.program, env_auto, decisions=result.decisions, backend="auto")
        execute(result.program, env_ref, decisions=result.decisions, backend="interp")
        assert env_auto["s"] == env_ref["s"]
        np.testing.assert_array_equal(env_auto["a"], env_ref["a"])

    def test_auto_records_decisions_in_workmeter(self):
        from repro.runtime import workmeter
        from repro.runtime.compile import execute

        result = parallelize(
            "for (i = 0; i < n; i++) a[i] = i * 2;", AnalysisConfig.new_algorithm()
        )
        n = 512
        workmeter.reset()
        try:
            execute(result.program, {"n": n, "a": np.zeros(n)},
                    decisions=result.decisions, backend="auto")
            preds = workmeter.predictions()
            assert preds, "auto backend recorded no cost-model decisions"
            entry = next(iter(preds.values()))
            assert entry["choice"] in ("compiled", "compiled-parallel")
            table = workmeter.format_decision_table()
            assert "choice" in table and "predicted" in table
        finally:
            workmeter.reset()
