"""Compiled execution backend tests.

Three layers: per-node lowering units (each mini-C construct compiled and
cross-checked against the interpreter), differential equivalence over the
whole benchmark registry and a fuzz slice (``REPRO_EXEC_DIFF`` built into
:func:`execute`), and backend-selection/fallback behavior.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.analysis import AnalysisConfig
from repro.benchmarks import all_benchmarks, get_benchmark
from repro.lang.astnodes import Program
from repro.lang.cparser import parse_program
from repro.parallelizer import parallelize
from repro.runtime.compile import (
    BackendMismatch,
    CompiledProgram,
    compile_program,
    execute,
    resolved_backend,
)
from repro.runtime.interp import InterpError, Interpreter, run_program
from repro.runtime.parexec import states_equivalent


def deep_env(env):
    return {k: (v.copy() if isinstance(v, np.ndarray) else v) for k, v in env.items()}


def run_both(src, env):
    """Run source through interpreter and compiled backend; assert equal."""
    prog = parse_program(src)
    ref = run_program(prog, deep_env(env))
    cp = compile_program(prog)
    out = cp.run(deep_env(env))
    assert states_equivalent(ref, out), f"compiled diverged\n{cp.source}"
    return ref, out, cp


# ---------------------------------------------------------------------------
# per-node lowering units
# ---------------------------------------------------------------------------


def test_scalar_arithmetic_and_c_division():
    # C semantics: integer division truncates toward zero, % follows the
    # dividend's sign
    src = "q = a / b; r = a % b; s = (0 - a) / b; t = (0 - a) % b;"
    ref, out, cp = run_both(src, {"a": 7, "b": 2})
    assert cp.fallback_reason is None
    assert out["q"] == 3 and out["r"] == 1
    assert out["s"] == -3 and out["t"] == -1


def test_if_else_and_logical_ops():
    src = """
    if (a > 0 && b < 10) { x = 1; } else { x = 2; }
    y = (a == 3) || (b == 99);
    z = !a;
    """
    ref, out, _ = run_both(src, {"a": 3, "b": 5, "x": 0, "y": 0, "z": 0})
    assert out["x"] == 1 and out["y"] == 1 and out["z"] == 0


def test_while_loop_lowering():
    src = "s = 0; i = 0; while (i < n) { s = s + i; i = i + 1; }"
    ref, out, _ = run_both(src, {"n": 10})
    assert out["s"] == 45


def test_canonical_for_with_array_store():
    src = "for (i = 0; i < n; i++) { a[i] = 2 * i + 1; }"
    ref, out, cp = run_both(src, {"n": 8, "a": np.zeros(8, dtype=np.int64)})
    assert cp.fallback_reason is None
    np.testing.assert_array_equal(out["a"], 2 * np.arange(8) + 1)


def test_nested_for_and_compound_assign():
    src = """
    for (i = 0; i < n; i++) {
        for (j = 0; j < m; j++) {
            c[i] += a[i * m + j];
        }
    }
    """
    env = {"n": 4, "m": 3, "a": np.arange(12.0), "c": np.zeros(4)}
    ref, out, _ = run_both(src, env)
    np.testing.assert_allclose(out["c"], np.arange(12.0).reshape(4, 3).sum(axis=1))


def test_incdec_survives_via_normalization():
    src = "k = 0; for (i = 0; i < n; i++) { b[k++] = i; }"
    ref, out, _ = run_both(src, {"n": 5, "b": np.zeros(5, dtype=np.int64)})
    assert out["k"] == 5
    np.testing.assert_array_equal(out["b"], np.arange(5))


def test_break_falls_back_to_serial_loop():
    src = "s = 0; for (i = 0; i < n; i++) { if (i == 3) break; s = s + 1; }"
    ref, out, _ = run_both(src, {"n": 100})
    assert out["s"] == 3 and out["i"] == 3


def test_ternary_and_calls():
    src = "x = a > b ? a : b; y = abs(0 - a); z = min(a, b);"
    ref, out, _ = run_both(src, {"a": 4, "b": 9})
    assert out["x"] == 9 and out["y"] == 4 and out["z"] == 4


def test_zero_division_propagates_unwrapped():
    prog = parse_program("x = 1 / d;")
    cp = compile_program(prog)
    with pytest.raises(ZeroDivisionError):
        cp.run({"d": 0})


def test_undefined_variable_raises_interperror():
    prog = parse_program("x = y + 1;")
    cp = compile_program(prog)
    with pytest.raises(InterpError, match="y"):
        cp.run({})


def test_out_of_bounds_store_raises_interperror():
    prog = parse_program("a[k] = 1;")
    cp = compile_program(prog)
    with pytest.raises(InterpError):
        cp.run({"a": np.zeros(4), "k": 99})


# ---------------------------------------------------------------------------
# vectorizer semantics
# ---------------------------------------------------------------------------


def test_affine_subscript_vectorization():
    src = "for (i = 0; i < n; i++) { a[2 * i + 1] = b[i] + 1; }"
    env = {"n": 16, "a": np.zeros(33), "b": np.arange(16.0)}
    ref, out, cp = run_both(src, env)
    assert "[" in cp.source and "for v_i in range" not in cp.source.split("\n")[0]


def test_gather_scatter_accumulate_duplicate_indices():
    # duplicate targets must accumulate like the serial loop (ufunc.at)
    src = "for (i = 0; i < n; i++) { h[idx[i]] = h[idx[i]] + w[i]; }"
    env = {
        "n": 10,
        "idx": np.array([0, 1, 0, 2, 1, 0, 2, 2, 1, 0], dtype=np.int64),
        "h": np.zeros(3),
        "w": np.arange(10.0),
    }
    ref, out, _ = run_both(src, env)
    np.testing.assert_allclose(out["h"], ref["h"])


def test_float_accumulate_into_int_array_truncates_like_interp():
    src = "for (i = 0; i < n; i++) { h[idx[i]] = h[idx[i]] + x[i]; }"
    env = {
        "n": 4,
        "idx": np.array([0, 0, 1, 1], dtype=np.int64),
        "h": np.zeros(2, dtype=np.int64),
        "x": np.array([0.5, 0.75, 1.5, 2.25]),
    }
    ref, out, _ = run_both(src, env)
    np.testing.assert_array_equal(out["h"], ref["h"])


def test_sum_reduction_within_tolerance():
    src = "s = 0; for (i = 0; i < n; i++) { s = s + a[i]; }"
    rng = np.random.default_rng(0)
    env = {"n": 1000, "s": 0.0, "a": rng.standard_normal(1000)}
    prog = parse_program(src)
    ref = run_program(prog, deep_env(env))
    out = compile_program(prog).run(deep_env(env))
    assert np.isclose(ref["s"], out["s"], rtol=1e-9)


def test_negative_start_guard_takes_scalar_branch():
    # a[i - 2] wraps for i < 2: the vectorized slice guard must reject and
    # fall into the scalar else-branch, matching interp exactly
    src = "for (i = 0; i < n; i++) { a[i - 2] = b[i]; }"
    env = {"n": 6, "a": np.zeros(6), "b": np.arange(6.0) + 1}
    ref, out, _ = run_both(src, env)
    np.testing.assert_array_equal(out["a"], ref["a"])


def test_stale_view_aliasing_read_after_write():
    # b[i] reads an element written by an earlier iteration: slice loads of
    # stored arrays must not see pre-loop snapshots
    src = "for (i = 1; i < n; i++) { b[i] = b[i - 1] + 1; }"
    env = {"n": 8, "b": np.zeros(8)}
    ref, out, _ = run_both(src, env)
    np.testing.assert_array_equal(out["b"], np.arange(8.0))


# ---------------------------------------------------------------------------
# trace mode
# ---------------------------------------------------------------------------


def test_trace_mode_matches_interp_hook_stream():
    src = "for (i = 0; i < n; i++) { a[i] = b[c[i]] + 1; }"
    prog = parse_program(src)
    env = {
        "n": 5,
        "a": np.zeros(5),
        "b": np.arange(10.0),
        "c": np.array([3, 1, 4, 1, 5], dtype=np.int64),
    }

    ref_events = []
    it = Interpreter(deep_env(env), access_hook=lambda *e: ref_events.append(e))
    for s in prog.stmts:
        it.exec_stmt(s)

    got_events = []
    cp = compile_program(prog, trace=True)
    cp.run(deep_env(env), access_hook=lambda *e: got_events.append(e))
    assert got_events == ref_events


# ---------------------------------------------------------------------------
# backend selection / fallback / differential mode
# ---------------------------------------------------------------------------


def test_resolved_backend_env_and_arg(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    assert resolved_backend() == "interp"
    monkeypatch.setenv("REPRO_BACKEND", "compiled")
    assert resolved_backend() == "compiled"
    assert resolved_backend("interp") == "interp"  # argument wins
    with pytest.raises(ValueError):
        resolved_backend("turbo")


def test_unlowerable_program_falls_back_to_interp_shim():
    # a while-loop whose body assigns through an unknown function cannot
    # crash compilation: compile_program returns an interp-backed shim
    prog = parse_program("x = froble(3);")
    cp = compile_program(prog)
    # either compiled with the unknown-call guard or interp fallback; both
    # must produce the interpreter's behavior (InterpError at run time)
    with pytest.raises(InterpError):
        cp.run({})


def test_execute_diff_mode_passes_on_benchmarks(monkeypatch):
    monkeypatch.setenv("REPRO_EXEC_DIFF", "1")
    for bench in all_benchmarks():
        prog = parse_program(bench.source)
        out = execute(prog, deep_env(bench.small_env()), backend="compiled")
        assert out is not None


def test_execute_diff_mode_detects_planted_divergence(monkeypatch):
    monkeypatch.setenv("REPRO_EXEC_DIFF", "1")
    prog = parse_program("for (i = 0; i < n; i++) { a[i] = i; }")
    real_run = CompiledProgram.run

    def corrupted(self, env, **kw):
        out = real_run(self, env, **kw)
        if isinstance(out.get("a"), np.ndarray):
            out["a"][0] += 1  # simulate a miscompiled store
        return out

    monkeypatch.setattr(CompiledProgram, "run", corrupted)
    with pytest.raises(BackendMismatch, match="divergence"):
        execute(prog, {"n": 4, "a": np.zeros(4)}, backend="compiled")


# ---------------------------------------------------------------------------
# differential equivalence: registry + fuzz slice
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", [b.name for b in all_benchmarks()])
def test_benchmark_registry_compiled_matches_interp(name):
    bench = get_benchmark(name)
    result = parallelize(bench.source, AnalysisConfig.new_algorithm())
    env = bench.small_env()
    ref = run_program(result.program, deep_env(env))
    cp = compile_program(result.program, result.decisions)
    out = cp.run(deep_env(env))
    assert states_equivalent(ref, out), f"{name} diverged\n{cp.source}"


FUZZ_SLICE = int(os.environ.get("REPRO_COMPILE_FUZZ_COUNT", "200"))


@pytest.mark.parametrize("shard", range(4))
def test_fuzz_slice_compiled_matches_interp(shard):
    from tests.fuzz.gen import generate

    for seed in range(shard, FUZZ_SLICE, 4):
        fp = generate(seed)
        prog = parse_program(fp.source)
        ref_exc = out_exc = None
        ref = out = None
        try:
            ref = run_program(prog, fp.fresh_env())
        except (InterpError, ZeroDivisionError) as exc:
            ref_exc = exc
        cp = compile_program(prog)
        try:
            out = cp.run(fp.fresh_env())
        except (InterpError, ZeroDivisionError) as exc:
            out_exc = exc
        assert (ref_exc is None) == (out_exc is None), (
            f"seed {seed}: interp={ref_exc!r} compiled={out_exc!r}\n{fp.source}"
        )
        if ref_exc is None:
            assert states_equivalent(ref, out), f"seed {seed} diverged\n{fp.source}"


def test_fuzz_slice_compiled_trace_matches_interp_hooks():
    from tests.fuzz.gen import generate

    checked = 0
    for seed in range(60):
        fp = generate(seed)
        prog = parse_program(fp.source)
        ref_events = []
        it = Interpreter(fp.fresh_env(), access_hook=lambda *e: ref_events.append(e))
        try:
            for s in prog.stmts:
                it.exec_stmt(s)
        except (InterpError, ZeroDivisionError):
            continue
        got_events = []
        cp = compile_program(prog, trace=True)
        cp.run(fp.fresh_env(), access_hook=lambda *e: got_events.append(e))
        assert got_events == ref_events, f"seed {seed}: trace stream diverged"
        checked += 1
    assert checked > 20  # the slice must actually exercise the trace path
