"""Differential parity suites for the masked and segmented vectorizers.

Every program here runs through both the reference interpreter and the
compiled backend, and the final states must agree — including scalars
(guarded accumulators, fill counters, inner-loop indices).  Each case
also asserts the *tier* the lowerer reports, so a silent bail back to
the scalar loop shows up as a failure, not as a slow pass.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.lang.cparser import parse_program
from repro.runtime.compile import compile_program
from repro.runtime.interp import InterpError, run_program
from repro.runtime.parexec import states_equivalent


def _deep(env):
    return {k: (v.copy() if isinstance(v, np.ndarray) else v) for k, v in env.items()}


def run_both(src, env, tier=None):
    """Run interp + compiled; assert parity and (optionally) the tier."""
    prog = parse_program(src)
    ref = run_program(prog, _deep(env))
    cp = compile_program(prog)
    assert cp.backend == "compiled", cp.fallback_reason
    out = cp.run(_deep(env))
    assert states_equivalent(ref, out), f"diverged\n{cp.source}"
    if tier is not None:
        assert tier in cp.loop_tiers.values(), (
            f"expected a {tier} loop, got {cp.loop_tiers} "
            f"(bails: {cp.loop_bails})\n{cp.source}"
        )
    return ref, out, cp


# ---------------------------------------------------------------------------
# masked vectorization
# ---------------------------------------------------------------------------


def test_masked_store_side_effect_free_rhs():
    src = """
    for (i = 0; i < n; i++) {
        if (a[i] > 0)
            b[i] = a[i] * 2;
    }
    """
    env = {"n": 50, "a": np.arange(-25.0, 25.0), "b": np.zeros(50)}
    run_both(src, env, tier="masked")


def test_masked_store_with_else_branch():
    src = """
    for (i = 0; i < n; i++) {
        if (a[i] > 0)
            b[i] = a[i];
        else
            b[i] = -a[i];
    }
    """
    env = {"n": 40, "a": np.arange(-20.0, 20.0), "b": np.zeros(40)}
    run_both(src, env, tier="masked")


def test_masked_effectful_rhs_guarded_accumulator():
    # the guarded branch both stores and bumps a scalar accumulator
    src = """
    s = 0;
    for (i = 0; i < n; i++) {
        if (a[i] > 2) {
            b[i] = a[i] * 2;
            s = s + a[i];
        }
    }
    """
    env = {"n": 30, "a": np.arange(30) % 7, "b": np.zeros(30, dtype=np.int64), "s": 0}
    ref, out, _ = run_both(src, env, tier="masked")
    assert out["s"] == ref["s"] != 0


def test_masked_scan_reading_store_bails_but_stays_correct():
    # b[i] reads the accumulator's running value: a prefix scan, which the
    # vectorizer must refuse (scalar tier) yet still execute correctly
    src = """
    s = 0;
    for (i = 0; i < n; i++) {
        if (a[i] > 2) {
            b[i] = a[i] + s;
            s = s + a[i];
        }
    }
    """
    env = {"n": 30, "a": np.arange(30) % 7, "b": np.zeros(30, dtype=np.int64), "s": 0}
    ref, out, cp = run_both(src, env)
    assert set(cp.loop_tiers.values()) == {"scalar"}
    assert "loop-carried scalar" in cp.loop_bails.popitem()[1]


def test_masked_counter_fill():
    # the paper's LEMMA-1 fill idiom (AMGmk's A_rownnz construction)
    src = """
    k = 0;
    for (i = 0; i < n; i++) {
        if (a[i] > 0) {
            idx[k] = i;
            k = k + 1;
        }
    }
    """
    rng = np.random.default_rng(7)
    env = {
        "n": 64,
        "a": rng.integers(-3, 4, 64).astype(np.int64),
        "idx": np.zeros(64, dtype=np.int64),
        "k": 0,
    }
    ref, out, _ = run_both(src, env, tier="masked")
    assert out["k"] == ref["k"] > 0


def test_masked_short_circuit_and_or():
    src = """
    for (i = 0; i < n; i++) {
        if (a[i] > 0 && b[a[i]] > 1)
            c[i] = b[a[i]];
        if (a[i] < 0 || b[i] > 2)
            d[i] = a[i] + b[i];
    }
    """
    rng = np.random.default_rng(3)
    env = {
        "n": 48,
        # a <= 0 lanes would make b[a[i]] unsafe-looking; short-circuit
        # must keep them unevaluated exactly as the interpreter does
        "a": rng.integers(-5, 48, 48).astype(np.int64),
        "b": rng.integers(0, 5, 48).astype(np.float64),
        "c": np.zeros(48),
        "d": np.zeros(48),
    }
    run_both(src, env, tier="masked")


def test_masked_nan_propagation():
    # NaN compares false elementwise, exactly like the scalar path
    src = """
    for (i = 0; i < n; i++) {
        if (a[i] > 0.5)
            b[i] = a[i] * 10.0;
        else
            b[i] = 0.0 - 1.0;
    }
    """
    a = np.linspace(0.0, 1.0, 20)
    a[3] = np.nan
    a[11] = np.nan
    env = {"n": 20, "a": a, "b": np.zeros(20)}
    ref, out, _ = run_both(src, env, tier="masked")
    assert out["b"][3] == -1.0  # NaN lane took the else branch


def test_masked_empty_selection():
    src = """
    s = 0;
    for (i = 0; i < n; i++) {
        if (a[i] > 100) {
            b[i] = 1;
            s = s + 1;
        }
    }
    """
    env = {"n": 16, "a": np.zeros(16), "b": np.zeros(16, dtype=np.int64), "s": 0}
    ref, out, _ = run_both(src, env, tier="masked")
    assert out["s"] == 0


# ---------------------------------------------------------------------------
# segmented (CSR) vectorization
# ---------------------------------------------------------------------------


def _csr_env(nrows, seed=0, empty_rows=False):
    rng = np.random.default_rng(seed)
    counts = rng.integers(0, 5, nrows)
    if empty_rows:
        counts[:: 3] = 0
    rp = np.zeros(nrows + 1, dtype=np.int64)
    np.cumsum(counts, out=rp[1:])
    nnz = int(rp[-1])
    return {
        "n": nrows,
        "rp": rp,
        "col": rng.integers(0, nrows, max(nnz, 1)).astype(np.int64),
        "val": rng.standard_normal(max(nnz, 1)),
        "x": rng.standard_normal(nrows),
        "y": np.zeros(nrows),
    }


CSR_SPMV = """
for (i = 0; i < n; i++) {
    t = x[i];
    for (j = rp[i]; j < rp[i + 1]; j++)
        t = t + val[j] * x[col[j]];
    y[i] = t;
}
"""


def test_segmented_spmv_parity():
    env = _csr_env(60, seed=1)
    env["t"] = 0.0
    run_both(CSR_SPMV, env, tier="segmented")


def test_segmented_empty_rows():
    env = _csr_env(45, seed=2, empty_rows=True)
    env["t"] = 0.0
    ref, out, _ = run_both(CSR_SPMV, env, tier="segmented")
    assert (np.asarray(ref["rp"][1:]) == np.asarray(ref["rp"][:-1])).any()


def test_segmented_all_rows_empty_zero_trip_inner():
    env = _csr_env(20, seed=3)
    env["rp"][:] = 0  # every inner loop is zero-trip
    env["t"] = 0.0
    ref, out, _ = run_both(CSR_SPMV, env, tier="segmented")
    assert np.array_equal(out["y"], ref["y"])


def test_segmented_zero_outer_trips():
    env = _csr_env(10, seed=4)
    env["n"] = 0
    env["t"] = 0.0
    run_both(CSR_SPMV, env, tier="segmented")


def test_segmented_nan_values_flow_through_reduction():
    env = _csr_env(30, seed=5)
    env["val"][::4] = np.nan
    env["t"] = 0.0
    ref, out, _ = run_both(CSR_SPMV, env, tier="segmented")
    assert np.isnan(out["y"]).any()


def test_segmented_guard_inside_inner_loop():
    # mask nested inside a segmented frame
    src = """
    for (i = 0; i < n; i++) {
        t = 0.0;
        for (j = rp[i]; j < rp[i + 1]; j++) {
            if (val[j] > 0.0)
                t = t + val[j];
        }
        y[i] = t;
    }
    """
    env = _csr_env(40, seed=6)
    env["t"] = 0.0
    run_both(src, env, tier="segmented")


def test_segmented_float_bounds_fault_consistently():
    # a float-valued row pointer must not be silently truncated by the
    # segmented tier: the compiled backend faults — the same behavior its
    # scalar range() loop has always had for non-integer bounds
    src = """
    for (i = 0; i < n; i++) {
        for (j = rp[i]; j < rp[i + 1]; j++)
            y[i] = y[i] + val[j];
    }
    """
    env = {
        "n": 8,
        "rp": np.linspace(0.0, 4.0, 9),  # float row pointer
        "val": np.ones(8),
        "y": np.zeros(8),
    }
    prog = parse_program(src)
    cp = compile_program(prog)
    assert "segmented" in cp.loop_tiers.values()
    with pytest.raises(InterpError):
        cp.run(_deep(env))
    cp2 = compile_program(prog, vectorize=False)
    with pytest.raises(InterpError):
        cp2.run(_deep(env))


# ---------------------------------------------------------------------------
# flattened (uniform inner trip) vectorization
# ---------------------------------------------------------------------------


def test_flattened_small_uniform_inner_loop():
    # constant small trip count: the UA(transf) gather shape
    src = """
    for (i = 0; i < n; i++) {
        t = 0.0;
        for (j = 0; j < 4; j++)
            t = t + a[map[4 * i + j]];
        out[i] = t;
    }
    """
    rng = np.random.default_rng(8)
    env = {
        "n": 32,
        "a": rng.standard_normal(32),
        "map": rng.integers(0, 32, 128).astype(np.int64),
        "out": np.zeros(32),
        "t": 0.0,
    }
    run_both(src, env, tier="flattened")


def test_large_uniform_inner_loop_stays_on_slice_path():
    # big dense inner loops must NOT be flattened into gathers: the inner
    # loop vectorizes as a slice and the outer stays a cheap scalar loop
    src = """
    for (i = 0; i < n; i++) {
        s = 0.0;
        for (j = 0; j < n; j++)
            s = s + a[j] * b[j];
        out[i] = s;
    }
    """
    env = {
        "n": 200,
        "a": np.random.default_rng(9).standard_normal(200),
        "b": np.random.default_rng(10).standard_normal(200),
        "out": np.zeros(200),
        "s": 0.0,
    }
    ref, out, cp = run_both(src, env)
    assert "flattened" not in cp.loop_tiers.values()
    assert "vectorized" in cp.loop_tiers.values()


# ---------------------------------------------------------------------------
# registry tier pins + inspector weights
# ---------------------------------------------------------------------------


def test_registry_benchmarks_achieve_expected_tiers():
    # a lowering regression that bails a kernel loop back to scalar must
    # fail here, not surface as a silent slowdown in the speed gates
    from collections import Counter

    from repro.analysis import AnalysisConfig
    from repro.benchmarks import all_benchmarks
    from repro.parallelizer import parallelize

    pinned = [b for b in all_benchmarks() if b.expected_tiers]
    assert len(pinned) >= 6
    for bench in pinned:
        result = parallelize(bench.source, AnalysisConfig.new_algorithm())
        cp = compile_program(result.program, result.decisions)
        assert cp.backend == "compiled", (bench.name, cp.fallback_reason)
        got = Counter(cp.loop_tiers.values())
        for tier, n in bench.expected_tiers.items():
            assert got[tier] >= n, (
                f"{bench.name}: expected >= {n} {tier} loop(s), got {dict(got)} "
                f"(bails: {cp.loop_bails})"
            )


def test_inspect_segment_weights_matches_executed_trips():
    from repro.runtime.inspector import inspect_segment_weights

    env = _csr_env(50, seed=11, empty_rows=True)
    w = inspect_segment_weights(env["rp"])
    assert w.sum() == env["rp"][-1]
    assert (w >= 0).all() and (w == 0).any()
    # descending glitches clamp to zero-trip, like the executed loops
    rp = np.array([0, 4, 2, 7])
    assert inspect_segment_weights(rp).tolist() == [4, 0, 5]
    assert inspect_segment_weights(rp, lo=1, hi=2).tolist() == [0]
    assert len(inspect_segment_weights(np.array([0]))) == 0
