"""Speculative inspector-executor tier, end to end.

A scatter through an environment-provided index array is statically
uncertifiable — nothing in the program proves the array monotonic — so
the verdict is serial.  The speculative tier attaches a *conditional*
certificate (``SpeculativeStep``: "parallel IF a dispatch-time inspection
finds the array strictly increasing"), the independent checker validates
it, and the compiled runtime decides per dispatch:

* pass arm — the live array is monotone: the loop runs compiled-parallel
  through the worker pool (chunk records prove it) and the race checker
  confirms the execution was race-free;
* fail arm — the live array violates monotonicity: the inspection fails
  closed and the loop runs serially (the race checker confirms parallel
  execution would have raced).

Both arms must be bit-identical to the interpreter.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.analysis import AnalysisConfig
from repro.ir import perfstats
from repro.lang.astnodes import For
from repro.parallelizer import parallelize
from repro.parallelizer.driver import _loops_by_id
from repro.runtime import workmeter
from repro.runtime.compile import execute
from repro.runtime.interp import run_program
from repro.runtime.parexec import states_equivalent
from repro.runtime.racecheck import check_loop_races
from repro.verify import check_certificate
from repro.verify.certificate import SPEC_STRICT, SpeculativeStep

# env-provided idx: the analysis can prove nothing about its contents
SRC = "for (i = 0; i < n; i++) { x[idx[i]] = x[idx[i]] + y[i]; }\n"

N = 128  # above MIN_PAR_TRIPS so the pool accepts the dispatch


def _env(monotone: bool):
    idx = np.arange(N, dtype=np.int64)
    if not monotone:
        idx[N // 2] = idx[N // 2 - 1]  # one duplicate: scatter now races
    return {
        "n": N,
        "idx": idx,
        "x": np.zeros(N, dtype=np.int64),
        "y": np.arange(N, dtype=np.int64),
    }


@pytest.fixture()
def result():
    return parallelize(SRC, AnalysisConfig.new_algorithm())


@pytest.fixture()
def loop(result):
    (stmt,) = [s for s in result.program.stmts if isinstance(s, For)]
    return stmt


class TestSpeculativeDecision:
    def test_statically_uncertifiable_loop_gets_conditional_certificate(self, result, loop):
        d = result.decisions[loop.loop_id]
        assert not d.parallel  # the static verdict stays serial
        assert d.speculation is not None
        assert d.speculation_verified
        steps = d.speculation.speculative
        assert any(sp.array == "idx" and sp.required == SPEC_STRICT for sp in steps)

    def test_checker_accepts_the_stored_certificate(self, result, loop):
        d = result.decisions[loop.loop_id]
        loops = _loops_by_id(result.analysis.program)
        res = check_certificate(d.speculation, loops)
        assert res.ok, res.failures

    def test_checker_rejects_corrupted_speculative_steps(self, result, loop):
        d = result.decisions[loop.loop_id]
        loops = _loops_by_id(result.analysis.program)
        cert = d.speculation
        # unknown hypothesis kind
        bad = dataclasses.replace(
            cert,
            speculative=tuple(
                dataclasses.replace(sp, required="wavy") for sp in cert.speculative
            ),
        )
        assert not check_certificate(bad, loops).ok
        # hypothesis about an array the certified loop itself writes
        bad = dataclasses.replace(
            cert,
            speculative=cert.speculative
            + (SpeculativeStep(array="x", required=SPEC_STRICT, predicate="bogus"),),
        )
        assert not check_certificate(bad, loops).ok

    def test_no_speculate_config_disables_the_tier(self):
        config = dataclasses.replace(AnalysisConfig.new_algorithm(), speculate=False)
        res = parallelize(SRC, config)
        assert all(d.speculation is None for d in res.decisions.values())


class TestSpeculativeExecution:
    def test_pass_arm_runs_compiled_parallel_and_matches_interp(self, result, loop):
        workmeter.reset()
        before = perfstats.STATS.as_dict()
        env_c = _env(monotone=True)
        execute(result.program, env_c, decisions=result.decisions,
                backend="compiled-parallel")
        after = perfstats.STATS.as_dict()
        assert after["inspect_passes"] - before["inspect_passes"] >= 1
        assert after["inspect_fails"] == before["inspect_fails"]
        # the worker pool really ran the loop (>= 1 chunk record; the
        # chunk count equals the healthy-worker count on this machine)
        chunks = workmeter._CHUNKS.get(loop.loop_id or "", [])
        assert chunks, "pass arm did not dispatch through the pool"
        env_i = _env(monotone=True)
        run_program(result.program, env_i)
        assert states_equivalent(env_i, env_c)
        # the parallel arm was sound: the execution is race-free
        race = check_loop_races(result.program, loop, _env(monotone=True))
        assert race.clean

    def test_fail_arm_falls_back_to_serial_and_matches_interp(self, result, loop):
        workmeter.reset()
        before = perfstats.STATS.as_dict()
        env_c = _env(monotone=False)
        execute(result.program, env_c, decisions=result.decisions,
                backend="compiled-parallel")
        after = perfstats.STATS.as_dict()
        assert after["inspect_fails"] - before["inspect_fails"] >= 1
        assert not workmeter._CHUNKS.get(loop.loop_id or "", [])
        env_i = _env(monotone=False)
        run_program(result.program, env_i)
        assert states_equivalent(env_i, env_c)
        # serial was the only sound choice: parallel would have raced
        race = check_loop_races(result.program, loop, _env(monotone=False))
        assert not race.clean

    def test_inspection_is_memoized_per_array_content(self, result):
        perfstats.clear_caches()
        before = perfstats.STATS.as_dict()
        env = _env(monotone=True)
        execute(result.program, dict(env), decisions=result.decisions,
                backend="compiled-parallel")
        execute(result.program, dict(env), decisions=result.decisions,
                backend="compiled-parallel")
        after = perfstats.STATS.as_dict()
        assert after["inspect_passes"] - before["inspect_passes"] == 1
        assert after["inspect_memo_hits"] - before["inspect_memo_hits"] >= 1

    def test_inspections_surface_in_the_stats_table(self, result):
        workmeter.reset()
        execute(result.program, _env(monotone=True), decisions=result.decisions,
                backend="compiled-parallel")
        table = workmeter.format_inspector_table()
        assert "speculative inspections" in table
        assert "idx" in table
