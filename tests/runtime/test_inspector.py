"""Inspector / run-time baseline tests."""

import numpy as np
import pytest

from repro.analysis import AnalysisConfig
from repro.benchmarks import get_benchmark
from repro.experiments.harness import _compile
from repro.parallelizer import parallelize
from repro.runtime.inspector import InspectorExecutorModel, SpeculativeModel, break_even_runs, compile_time_model_time, inspect_monotonicity
from repro.runtime.interp import run_program
from repro.runtime.simulate import plan_from_decisions


class TestInspectMonotonicity:
    def test_strict(self):
        r = inspect_monotonicity(np.array([0, 2, 5, 9]))
        assert r.monotonic and r.strict and r.injective

    def test_nonstrict(self):
        r = inspect_monotonicity(np.array([0, 2, 2, 9]))
        assert r.monotonic and not r.strict

    def test_not_monotonic(self):
        r = inspect_monotonicity(np.array([0, 5, 3]))
        assert not r.monotonic

    def test_region_bounds(self):
        r = inspect_monotonicity(np.array([9, 0, 1, 2, 0]), lo=1, hi=4)
        assert r.strict and r.elements_scanned == 3

    def test_trivial_regions(self):
        assert inspect_monotonicity(np.array([]), 0, 0).monotonic
        assert inspect_monotonicity(np.array([5]), 0, 1).strict


def test_compile_time_claim_matches_runtime_inspection():
    """The bridge between the two worlds: whatever the analysis proves, the
    run-time inspector must confirm on the real input."""
    bench = get_benchmark("AMGmk")
    result = parallelize(bench.source, AnalysisConfig.new_algorithm())
    prop = result.analysis.properties.property_of("A_rownnz")
    assert prop is not None and prop.kind.strict
    env = {k: (v.copy() if isinstance(v, np.ndarray) else v) for k, v in bench.small_env().items()}
    out = run_program(result.program, env)
    r = inspect_monotonicity(out["A_rownnz"], 0, int(out["irownnz"]))
    assert r.strict  # the compile-time SMA claim holds at run time


class TestCostModels:
    def setup_method(self):
        bench = get_benchmark("SDDMM")
        self.perf = bench.perf_model(bench.default_dataset)
        result = _compile(bench.name, "Cetus+NewAlgo")
        self.plan = plan_from_decisions(self.perf, result)
        self.index_len = len(self.perf.components[0].work)

    def test_compile_time_is_cheapest_per_run(self):
        ie = InspectorExecutorModel()
        spec = SpeculativeModel()
        t_ct = compile_time_model_time(self.perf, self.plan, 16, 1)
        t_ie = ie.time(self.perf, self.plan, 16, 1, self.index_len)
        t_sp = spec.time(self.perf, self.plan, 16, 1, self.index_len)
        assert t_ct < t_ie
        assert t_ct < t_sp

    def test_inspector_amortizes_with_runs(self):
        ie = InspectorExecutorModel()
        overhead = lambda runs: ie.time(
            self.perf, self.plan, 16, runs, self.index_len
        ) / compile_time_model_time(self.perf, self.plan, 16, runs)
        assert overhead(1) > overhead(100) >= 1.0

    def test_speculation_never_amortizes(self):
        spec = SpeculativeModel()
        ratio = lambda runs: spec.time(
            self.perf, self.plan, 16, runs, self.index_len
        ) / compile_time_model_time(self.perf, self.plan, 16, runs)
        assert ratio(100) == pytest.approx(ratio(1))
        assert ratio(100) > 1.5

    def test_speculation_failure_costs_serial_rerun(self):
        spec = SpeculativeModel()
        ok = spec.time(self.perf, self.plan, 16, 10, self.index_len, failure_rate=0.0)
        bad = spec.time(self.perf, self.plan, 16, 10, self.index_len, failure_rate=0.5)
        assert bad > ok

    def test_break_even_exists_and_is_small_for_big_kernels(self):
        n = break_even_runs(self.perf, self.plan, 16, self.index_len)
        assert n is not None
        assert n >= 1

    def test_heavyweight_inspector_needs_tens_of_runs(self):
        """Paper §5: simplified inspectors still need the executor to run
        40-60 times to amortize; our heavyweight-inspector calibration
        lands in that range."""
        ie = InspectorExecutorModel(inspect_ops_per_elem=100.0)
        n = break_even_runs(
            self.perf, self.plan, 16, int(self.perf.total_ops() / 3), ie
        )
        assert n is not None
        assert 20 <= n <= 100


def test_baseline_cells_shape():
    from repro.experiments.baselines import baseline_cells

    cells = baseline_cells()
    assert len(cells) == 3 * 5
    for c in cells:
        # the paper's approach is never worse than either baseline
        assert c.t_compile_time <= c.t_inspector + 1e-12
        assert c.t_compile_time <= c.t_speculative + 1e-12
        # and always beats serial for these three apps
        assert c.t_compile_time < c.t_serial
