"""Property-based interpreter validation.

Random straight-line integer programs are executed by the interpreter and
independently by a direct Python evaluator; results must agree.  This
guards the C-semantics corners (truncating division, remainder sign,
short-circuit logic) the benchmark kernels rely on.
"""

from hypothesis import given, settings, strategies as st

from repro.lang.cparser import parse_program
from repro.runtime.interp import run_program

VARS = ["x", "y", "z"]


@st.composite
def int_exprs(draw, depth=0):
    if depth >= 3:
        kind = draw(st.sampled_from(["int", "var"]))
    else:
        kind = draw(st.sampled_from(["int", "var", "add", "sub", "mul", "div", "mod", "cmp"]))
    if kind == "int":
        return str(draw(st.integers(-9, 9)))
    if kind == "var":
        return draw(st.sampled_from(VARS))
    a = draw(int_exprs(depth=depth + 1))
    b = draw(int_exprs(depth=depth + 1))
    if kind == "add":
        return f"({a} + {b})"
    if kind == "sub":
        return f"({a} - {b})"
    if kind == "mul":
        return f"({a} * {b})"
    if kind == "div":
        return f"({a} / ({b} * {b} + 1))"  # denominator always >= 1
    if kind == "mod":
        return f"({a} % ({b} * {b} + 1))"
    return f"({a} < {b})"


def py_div(a, b):
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b > 0) else -q


def py_mod(a, b):
    return a - b * py_div(a, b)


class C(int):
    """Int wrapper giving Python's eval C semantics for / and %."""

    def __add__(self, o):
        return C(int(self) + int(o))

    def __sub__(self, o):
        return C(int(self) - int(o))

    def __mul__(self, o):
        return C(int(self) * int(o))

    def __truediv__(self, o):
        return C(py_div(int(self), int(o)))

    def __mod__(self, o):
        return C(py_mod(int(self), int(o)))

    def __lt__(self, o):
        return C(1 if int(self) < int(o) else 0)

    def __neg__(self):
        return C(-int(self))

    def __pos__(self):
        return self


def py_eval(expr, env):
    """Evaluate the generated expression with C semantics in Python."""
    import re

    # wrap integer literals so every operand carries the C semantics
    expr_py = re.sub(r"(?<![\w.])(\d+)", r"C(\1)", expr)
    scope = {k: C(v) for k, v in env.items()}
    scope["C"] = C
    return int(eval(expr_py, {"__builtins__": {}}, scope))


@given(
    int_exprs(),
    st.integers(-20, 20),
    st.integers(-20, 20),
    st.integers(-20, 20),
)
@settings(max_examples=300, deadline=None)
def test_interpreter_matches_c_semantics(expr, x, y, z):
    env = {"x": x, "y": y, "z": z}
    src = f"r = {expr};"
    out = run_program(parse_program(src), dict(env))
    assert out["r"] == py_eval(expr, env)


@given(st.lists(st.integers(-10, 10), min_size=1, max_size=20))
@settings(max_examples=100, deadline=None)
def test_loop_sum_matches_python(values):
    import numpy as np

    src = "s = 0; for (i = 0; i < n; i++) { s = s + a[i]; }"
    out = run_program(
        parse_program(src), {"n": len(values), "a": np.array(values, dtype=np.int64)}
    )
    assert out["s"] == sum(values)


@given(st.lists(st.integers(0, 30), min_size=1, max_size=20), st.integers(0, 30))
@settings(max_examples=100, deadline=None)
def test_conditional_fill_matches_python(values, threshold):
    """The Figure 4 pattern against a Python reference for arbitrary data."""
    import numpy as np

    src = """
    m = 0;
    for (j = 0; j < n; j++) {
        if (xs[j] < t)
            ind[m++] = j;
    }
    """
    out = run_program(
        parse_program(src),
        {
            "n": len(values),
            "t": threshold,
            "xs": np.array(values, dtype=np.int64),
            "ind": np.zeros(len(values), dtype=np.int64),
            "m": 0,
        },
    )
    expected = [j for j, v in enumerate(values) if v < threshold]
    assert out["m"] == len(expected)
    assert list(out["ind"][: out["m"]]) == expected
    # and the paper's invariant: the filled prefix is strictly monotonic
    assert all(a < b for a, b in zip(expected, expected[1:]))
