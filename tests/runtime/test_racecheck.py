"""Race-checker tests: it must flag racy loops and clear independent ones."""

import numpy as np

from repro.analysis.normalize import normalize_program
from repro.lang.astnodes import For
from repro.lang.cparser import parse_program
from repro.runtime.racecheck import check_loop_races


def check(src, env, loop_index=0, **kw):
    prog = normalize_program(parse_program(src))
    loops = [s for s in prog.stmts if isinstance(s, For)]
    return check_loop_races(prog, loops[loop_index], env, **kw)


def test_disjoint_writes_clean():
    rep = check("for (i = 0; i < 8; i++) a[i] = i;", {"a": np.zeros(8)})
    assert rep.clean
    assert rep.iterations == 8


def test_histogram_races_detected():
    env = {"key": np.array([1, 2, 1, 3]), "bucket": np.zeros(5, dtype=np.int64)}
    rep = check("for (i = 0; i < 4; i++) bucket[key[i]] = bucket[key[i]] + 1;", env)
    assert not rep.clean
    # key value 1 is written by iterations 0 and 2
    assert any(c.element == (1,) for c in rep.conflicts)


def test_read_write_conflict_detected():
    rep = check("for (i = 1; i < 8; i++) a[i] = a[i-1];", {"a": np.arange(8.0)})
    assert not rep.clean


def test_same_iteration_rw_is_fine():
    rep = check("for (i = 0; i < 8; i++) a[i] = a[i] * 2;", {"a": np.ones(8)})
    assert rep.clean


def test_read_only_sharing_is_fine():
    env = {"a": np.zeros(8), "b": np.ones(8)}
    rep = check("for (i = 0; i < 8; i++) a[i] = b[0] + b[i];", env)
    assert rep.clean


def test_ignore_arrays():
    env = {"tmp": np.zeros(4), "a": np.zeros(8)}
    rep = check(
        "for (i = 0; i < 8; i++) { tmp[0] = i; a[i] = tmp[0]; }",
        env,
        ignore_arrays={"tmp"},
    )
    assert rep.clean


def test_amg_kernel_race_free_via_monotone_indirection():
    """End-to-end soundness: the loop NewAlgo parallelizes has no races."""
    indptr = np.array([0, 2, 2, 5, 5, 9, 12])
    env = {
        "num_rows": 6,
        "A_i": indptr,
        "A_rownnz": np.zeros(6, dtype=np.int64),
        "irownnz": 0,
        "num_rownnz": 4,
        "A_data": np.ones(12),
        "A_j": np.arange(12) % 6,
        "x_data": np.ones(6),
        "y_data": np.zeros(6),
    }
    src = """
    irownnz = 0;
    for (i = 0; i < num_rows; i++){
        adiag = A_i[i+1] - A_i[i];
        if (adiag > 0)
            A_rownnz[irownnz++] = i;
    }
    for (i = 0; i < num_rownnz; i++){
        m = A_rownnz[i];
        tempx = y_data[m];
        for (jj = A_i[m]; jj < A_i[m+1]; jj++)
            tempx += A_data[jj] * x_data[A_j[jj]];
        y_data[m] = tempx;
    }
    """
    rep = check(src, env, loop_index=1)
    assert rep.clean, [str(c) for c in rep.conflicts]


def test_conflict_string_format():
    env = {"a": np.zeros(3)}
    rep = check("for (i = 0; i < 3; i++) a[0] = i;", env)
    assert not rep.clean
    assert "a[0]" in str(rep.conflicts[0])


def test_compiled_backend_reports_identical_races():
    """backend="compiled" must reproduce the interpreter's conflict log."""
    from repro.analysis import AnalysisConfig
    from repro.benchmarks import get_benchmark
    from repro.parallelizer import parallelize
    from repro.lang.astnodes import For

    for name in ("AMGmk", "IS"):
        bench = get_benchmark(name)
        result = parallelize(bench.source, AnalysisConfig.new_algorithm())
        loops = [s for s in result.program.stmts if isinstance(s, For)]
        for loop in loops:
            e1 = {k: (v.copy() if hasattr(v, "copy") else v) for k, v in bench.small_env().items()}
            e2 = {k: (v.copy() if hasattr(v, "copy") else v) for k, v in bench.small_env().items()}
            r1 = check_loop_races(result.program, loop, e1, backend="interp")
            r2 = check_loop_races(result.program, loop, e2, backend="compiled")
            assert r1.iterations == r2.iterations
            assert [str(c) for c in r1.conflicts] == [str(c) for c in r2.conflicts]


# -- static mode ------------------------------------------------------------


def test_static_mode_disjoint_answers_without_executing():
    rep = check("for (i = 0; i < 8; i++) a[i] = i;", {"a": np.zeros(8)}, mode="static")
    assert rep.clean
    assert rep.mode == "static"
    assert rep.iterations == 0  # nothing was run
    assert "stride 1" in rep.static_reason


def test_static_mode_overlapping_reports_symbolic_conflict():
    rep = check("for (i = 0; i < 8; i++) a[0] = i;", {"a": np.zeros(8)}, mode="static")
    assert not rep.clean
    assert rep.mode == "static"
    assert rep.conflicts[0].array == "a"
    assert "static conflict" in str(rep.conflicts[0])


def test_static_mode_unknown_falls_back_to_trace():
    env = {"key": np.array([1, 2, 1, 3]), "bucket": np.zeros(5, dtype=np.int64)}
    rep = check(
        "for (i = 0; i < 4; i++) bucket[key[i]] = bucket[key[i]] + 1;",
        env,
        mode="static",
    )
    assert rep.mode == "trace"  # no static proof: the trace ran
    assert not rep.clean  # and found the genuine conflict


def test_static_mode_agrees_with_trace_on_clean_loop():
    src = "for (i = 0; i < 8; i++) a[i] = a[i] * 2;"
    srep = check(src, {"a": np.ones(8)}, mode="static")
    trep = check(src, {"a": np.ones(8)})
    assert srep.clean and trep.clean


def test_unknown_mode_rejected():
    import pytest

    with pytest.raises(ValueError, match="racecheck mode"):
        check("for (i = 0; i < 4; i++) a[i] = i;", {"a": np.zeros(4)}, mode="sideways")
