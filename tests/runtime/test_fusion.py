"""Certified loop fusion: transform semantics, forwarding, demotion."""

import os

import numpy as np
import pytest

from repro.analysis import AnalysisConfig
from repro.parallelizer import parallelize
from repro.runtime.compile import compile_program, execute
from repro.runtime.fuse import apply_fusion, fused_loop_id
from repro.runtime.interp import run_program
from repro.runtime.parexec import states_equivalent

CHAIN = """
for (i = 0; i < n; i++){
    t[i] = a[i] * 2;
}
for (j = 0; j < n; j++){
    b[j] = t[j] + 1;
}
"""

COPY_CHAIN = """
d = 0;
for (i = 0; i < n; i++){
    s = a[i] * 2;
    w[i] = s;
}
for (j = 0; j < n; j++){
    q[j] = w[j];
}
for (j = 0; j < n; j++){
    d = d + q[j];
}
"""


def _env(n=40):
    return {
        "n": n,
        "a": np.arange(n, dtype=np.float64),
        "t": np.zeros(n),
        "b": np.zeros(n),
        "w": np.zeros(n),
        "q": np.zeros(n),
        "s": 0.0,
        "d": 0.0,
    }


def _parallelized(src):
    return parallelize(src, AnalysisConfig.new_algorithm())


class TestApplyFusion:
    def test_pair_fuses_and_matches_interpreter(self):
        result = _parallelized(CHAIN)
        verified = [f for f in result.fusions if f.verified]
        assert verified, "producer/consumer pair did not verify"
        fused_prog, decisions, applied = apply_fusion(
            result.program, result.decisions, verified
        )
        assert len(applied) == 1
        group = applied[0]
        assert group["fused_id"] == fused_loop_id(group["loops"])
        # one fewer top-level loop, plus the j-fixup assignment
        env_f = _env()
        run_program(fused_prog, env_f)
        env_r = _env()
        run_program(result.program, env_r)
        assert states_equivalent(env_r, env_f)

    def test_index_fixup_reproduces_past_end_value(self):
        result = _parallelized(CHAIN)
        verified = [f for f in result.fusions if f.verified]
        fused_prog, _, applied = apply_fusion(
            result.program, result.decisions, verified
        )
        assert applied
        out = run_program(fused_prog, _env(n=7))
        # both the surviving index and the renamed one end past the bound
        assert out["i"] == 7 and out["j"] == 7

    def test_forwards_loads_through_cross_arrays(self):
        result = _parallelized(COPY_CHAIN)
        verified = [f for f in result.fusions if f.verified]
        assert verified
        _, _, applied = apply_fusion(result.program, result.decisions, verified)
        assert applied
        # q[j] = w[j] reads w via the stored scalar, and d += q[j] reads q
        # via the same scalar: two loads forwarded
        assert sum(g["forwarded_loads"] for g in applied) >= 2

    def test_forwarding_keeps_stores_observable(self):
        result = _parallelized(COPY_CHAIN)
        verified = [f for f in result.fusions if f.verified]
        fused_prog, _, applied = apply_fusion(
            result.program, result.decisions, verified
        )
        assert applied
        env_f = _env()
        run_program(fused_prog, env_f)
        env_r = _env()
        run_program(result.program, env_r)
        # the intermediate arrays are observable state: still written
        assert states_equivalent(env_r, env_f)
        np.testing.assert_array_equal(env_f["w"], env_f["a"] * 2)
        np.testing.assert_array_equal(env_f["q"], env_f["a"] * 2)

    def test_unverified_decision_is_skipped(self):
        result = _parallelized(CHAIN)
        verified = [f for f in result.fusions if f.verified]
        assert verified
        import dataclasses

        demoted = [dataclasses.replace(f, verified=False) for f in verified]
        prog, _, applied = apply_fusion(result.program, result.decisions, demoted)
        assert applied == []
        assert prog is result.program


class TestCompiledFusion:
    def test_compile_program_reports_fused_groups(self):
        result = _parallelized(CHAIN)
        cp = compile_program(
            result.program, result.decisions, fusions=result.fusions
        )
        assert cp.fused_groups
        fid = cp.fused_groups[0]["fused_id"]
        # the fused loop lowers to a vector tier, not scalar fallback
        assert cp.loop_tiers.get(fid) in ("vectorized", "flattened")
        env_c = _env()
        cp.run(env_c)
        env_r = _env()
        run_program(result.program, env_r)
        assert states_equivalent(env_r, env_c)

    def test_no_fusions_argument_means_no_fusion(self):
        result = _parallelized(CHAIN)
        cp = compile_program(result.program, result.decisions)
        assert cp.fused_groups == []

    def test_repro_fuse_kill_switch(self):
        result = _parallelized(CHAIN)
        os.environ["REPRO_FUSE"] = "0"
        try:
            env = _env()
            execute(
                result.program, env,
                decisions=result.decisions, backend="compiled",
                fusions=result.fusions,
            )
        finally:
            os.environ.pop("REPRO_FUSE", None)
        env_r = _env()
        run_program(result.program, env_r)
        assert states_equivalent(env_r, env)

    def test_fused_execution_under_auto_backend(self):
        result = _parallelized(COPY_CHAIN)
        env = _env()
        execute(
            result.program, env,
            decisions=result.decisions, backend="auto",
            fusions=result.fusions,
        )
        env_r = _env()
        run_program(result.program, env_r)
        assert states_equivalent(env_r, env)


class TestDemotion:
    def test_rejected_step_demotes_with_diagnostic(self):
        # ``s`` is private in the producer but the consumer reads its
        # post-loop value: both loops are parallel, the pair is proposed,
        # and the checker must reject the interleave (fusing would make
        # the consumer read iteration-local values of s)
        src = (
            "s = 0;\n"
            "for (i = 0; i < n; i++){ s = a[i] * 2; t[i] = s; }\n"
            "for (j = 0; j < n; j++){ b[j] = t[j] + s; }\n"
        )
        result = _parallelized(src)
        demoted = [f for f in result.fusions if not f.verified]
        if not any(result.fusions):
            pytest.skip("pair not proposed under this analysis config")
        assert demoted, "scalar-flow pair must not verify"
        assert any(d.kind == "fusion-rejected" for d in result.diagnostics)
        # and the compiled path must not fuse it
        cp = compile_program(
            result.program, result.decisions, fusions=result.fusions
        )
        assert cp.fused_groups == []
        env = {
            "n": 16,
            "a": np.arange(16, dtype=np.float64),
            "t": np.zeros(16),
            "b": np.zeros(16),
            "s": 0.0,
        }
        out = dict(env)
        cp.run(out)
        ref = {k: (v.copy() if isinstance(v, np.ndarray) else v) for k, v in env.items()}
        run_program(result.program, ref)
        assert states_equivalent(ref, out)

    def test_misaligned_offsets_are_not_proposed_verified(self):
        # consumer reads t[j + 1] while producer writes t[i]: offsets differ
        src = (
            "for (i = 0; i < n; i++){ t[i] = a[i]; }\n"
            "for (j = 0; j < n; j++){ b[j] = t[j + 1]; }\n"
        )
        result = _parallelized(src)
        assert not [f for f in result.fusions if f.verified]
