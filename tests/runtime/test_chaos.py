"""Chaos suite: deterministic fault injection against the self-healing pool.

Every fault class the ``REPRO_FAULTS`` grammar can express — worker
death, hangs, corrupted replies, shared-memory attach failures, disk
cache corruption, lowering faults — is driven against both targeted
synthetic kernels (which pin down the exact healing mechanism: respawn
counts, deadline budgets, snapshot-gated retries, breaker transitions)
and the full benchmark registry (which pins down the contract: outputs
always interp-cross-checked, zero leaked segments or child processes —
enforced by the autouse ``leakcheck`` fixture — and a diagnostics trail
naming what happened).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import diagnostics
from repro.analysis import AnalysisConfig
from repro.benchmarks import all_benchmarks
from repro.parallelizer import parallelize
from repro.runtime import faultplan, parbackend, workmeter
from repro.runtime.compile import compile_program, execute
from repro.runtime.faultplan import FaultPlan, FaultSpecError, parse_clause
from repro.runtime.interp import run_program
from repro.runtime.parbackend import WorkerPool, shutdown_pool
from repro.runtime.parexec import execute_resilient, states_equivalent
from repro.runtime.scheduler import retry_chunk_plan

N = 512  # comfortably past MIN_PAR_TRIPS so every dispatch actually happens

#: pure elementwise kernel: no array is both read and written -> chunk
#: retries are idempotent and need no snapshot
PURE_SRC = "for (i = 0; i < n; i++) { y[i] = a[i] * x[i] + 1.0; }"

#: self-update kernel: ``y`` is read and written -> a partially-executed
#: chunk must never be re-run without restoring the pre-dispatch state
SELF_SRC = "for (i = 0; i < n; i++) { y[i] = y[i] + a[i]; }"


def deep_env(env):
    return {k: (v.copy() if isinstance(v, np.ndarray) else v) for k, v in env.items()}


def _pure_env():
    rng = np.random.default_rng(11)
    return {"n": N, "a": rng.random(N), "x": rng.random(N), "y": np.zeros(N)}


def _self_env():
    rng = np.random.default_rng(13)
    return {"n": N, "a": rng.random(N), "y": rng.random(N)}


def _prepare(src):
    result = parallelize(src, AnalysisConfig.new_algorithm())
    cp = compile_program(result.program, result.decisions, parallel=True)
    assert cp.chunks, "kernel must certify parallel and compile a chunk"
    return result, cp


def _run_with_faults(monkeypatch, src, env, spec, deadline="2.0"):
    """Run ``src`` compiled-parallel on a 2-worker pool under ``spec``."""
    monkeypatch.setenv("REPRO_DISPATCH_DEADLINE_S", deadline)
    result, cp = _prepare(src)
    ref = run_program(result.program, deep_env(env))
    workmeter.reset()
    diagnostics.clear_runtime_trail()
    monkeypatch.setenv("REPRO_FAULTS", spec)
    faultplan.reset()
    pool = WorkerPool(2)
    try:
        out = cp.run(deep_env(env), pool=pool)
    finally:
        monkeypatch.delenv("REPRO_FAULTS")
        faultplan.reset()
        respawns = pool.respawns
        pool.shutdown()
    assert states_equivalent(ref, out)
    return out, respawns


def _fault_kinds():
    return {e["kind"] for e in workmeter.fault_events()}


# ---------------------------------------------------------------------------
# faultplan grammar
# ---------------------------------------------------------------------------


class TestFaultPlanGrammar:
    def test_bare_kind_gets_default_seam_and_first_hit(self):
        c = parse_clause("corrupt-reply")
        assert (c.kind, c.seam, c.occurrence, c.filters) == (
            "corrupt-reply", "dispatch", 1, {},
        )

    def test_explicit_seam_occurrence_and_filters(self):
        c = parse_clause("worker-exit@dispatch:2")
        assert (c.seam, c.occurrence) == ("dispatch", 2)
        c = parse_clause("hang:worker=1:chunk=0")
        assert c.filters == {"worker": "1", "chunk": "0"}
        c = parse_clause("shm-attach-fail:*")
        assert c.occurrence is None

    def test_occurrence_counting_is_per_clause(self):
        plan = FaultPlan("worker-exit@dispatch:2")
        assert plan.check("dispatch", worker=0) is None  # first hit arms
        assert plan.check("dispatch", worker=0) is not None  # second fires
        assert plan.check("dispatch", worker=0) is None  # one-shot

    def test_star_fires_every_matching_hit(self):
        plan = FaultPlan("shm-attach-fail:*")
        for _ in range(3):
            assert plan.check("attach", worker=1) is not None
        assert plan.check("dispatch", worker=1) is None  # wrong seam

    def test_filters_must_match_context(self):
        plan = FaultPlan("hang:worker=1:chunk=0")
        assert plan.check("dispatch", worker=0, chunk=0) is None
        assert plan.check("dispatch", worker=1, chunk=1) is None
        assert plan.check("dispatch", worker=1, chunk=0) is not None

    def test_multiple_clauses_compose(self):
        plan = FaultPlan("cache-corrupt, corrupt-reply:worker=1")
        assert plan.check("cache-read", kind="analysis") is not None
        assert plan.check("dispatch", worker=1, chunk=0) is not None

    @pytest.mark.parametrize(
        "bad", ["frobnicate", "worker-exit:0", "hang:nope", ""]
    )
    def test_bad_specs_raise(self, bad):
        if bad == "":
            assert FaultPlan("").clauses == []  # empty spec = no faults
        else:
            with pytest.raises(FaultSpecError):
                FaultPlan(bad)

    def test_corrupt_file_truncates_and_flips(self, tmp_path):
        p = tmp_path / "blob.bin"
        p.write_bytes(b"\x00" * 100)
        assert faultplan.corrupt_file(str(p))
        data = p.read_bytes()
        assert len(data) == 50 and data[0] != 0
        assert not faultplan.corrupt_file(str(tmp_path / "missing.bin"))


# ---------------------------------------------------------------------------
# metadata + retry planning units
# ---------------------------------------------------------------------------


def test_rw_overlap_metadata_marks_self_update_loops():
    _, cp_pure = _prepare(PURE_SRC)
    _, cp_self = _prepare(SELF_SRC)
    (meta_pure,) = cp_pure.chunk_meta.values()
    (meta_self,) = cp_self.chunk_meta.values()
    assert meta_pure["rw"] == []  # pure stores: retry needs no snapshot
    assert meta_self["rw"] == ["y"]  # read+write: snapshot-gated retry


def test_retry_chunk_plan_merges_and_covers():
    plan = retry_chunk_plan([(0, 64), (64, 128), (200, 232)], 4)
    covered = sorted(i for lo, hi in plan for i in range(lo, hi))
    assert covered == list(range(0, 128)) + list(range(200, 232))
    los = [lo for lo, _ in plan]
    assert los == sorted(los)  # ascending, non-overlapping
    assert 1 <= len(plan) <= 5
    assert retry_chunk_plan([], 4) == []
    assert retry_chunk_plan([(5, 5)], 4) == []


# ---------------------------------------------------------------------------
# targeted healing: one fault class at a time, mechanism pinned
# ---------------------------------------------------------------------------


class TestSelfHealing:
    def test_worker_exit_respawns_and_heals(self, monkeypatch):
        _, respawns = _run_with_faults(monkeypatch, PURE_SRC, _pure_env(), "worker-exit")
        assert respawns >= 1
        kinds = _fault_kinds()
        assert "worker-exit" in kinds and "worker-respawned" in kinds
        trail_kinds = {d.kind for d in diagnostics.runtime_trail()}
        assert diagnostics.WORKER_FAULT in trail_kinds

    def test_hung_worker_completes_within_deadline_budget(self, monkeypatch):
        t0 = time.monotonic()
        _, respawns = _run_with_faults(
            monkeypatch, PURE_SRC, _pure_env(), "hang:worker=0:chunk=0", deadline="0.5"
        )
        elapsed = time.monotonic() - t0
        # the injected hang sleeps HANG_SECONDS; supervision must cut it
        # off at the 0.5s deadline (plus compile/retry/teardown slack)
        assert elapsed < faultplan.HANG_SECONDS / 4
        assert respawns >= 1 and "hang" in _fault_kinds()

    def test_corrupt_reply_quarantines_worker(self, monkeypatch):
        _, respawns = _run_with_faults(
            monkeypatch, PURE_SRC, _pure_env(), "corrupt-reply:worker=1"
        )
        assert respawns >= 1 and "corrupt-reply" in _fault_kinds()

    def test_self_update_loop_survives_worker_exit(self, monkeypatch):
        # double-applied retries would make y diverge; the snapshot-gated
        # re-run keeps it exact (checked inside _run_with_faults)
        _, respawns = _run_with_faults(monkeypatch, SELF_SRC, _self_env(), "worker-exit")
        assert respawns >= 1

    def test_both_workers_exit_every_dispatch_falls_to_parent_serial(self, monkeypatch):
        _run_with_faults(monkeypatch, PURE_SRC, _pure_env(), "worker-exit:*")
        degs = workmeter.degradation_events()
        assert any(d["to"] == "compiled-serial" for d in degs)
        trail_kinds = {d.kind for d in diagnostics.runtime_trail()}
        assert diagnostics.EXECUTION_DEGRADED in trail_kinds

    def test_persistent_attach_failure_degrades_but_stays_correct(self, monkeypatch):
        _run_with_faults(monkeypatch, PURE_SRC, _pure_env(), "shm-attach-fail:*")
        kinds = _fault_kinds()
        assert "broadcast-failed" in kinds or "respawn-failed" in kinds

    def test_one_shot_attach_failure_heals_by_respawn(self, monkeypatch):
        # each worker fails its own first attach; the respawned workers
        # (fresh processes, fresh counters) fail theirs too — but the
        # clause below scopes the fault to worker 0 only, so worker 1
        # carries the dispatch while 0 heals
        _, _ = _run_with_faults(
            monkeypatch, PURE_SRC, _pure_env(), "shm-attach-fail:worker=1"
        )

    def test_breaker_opens_then_reprobes_after_cooldown(self, monkeypatch):
        monkeypatch.setenv("REPRO_BREAKER_THRESHOLD", "1")
        monkeypatch.setenv("REPRO_BREAKER_COOLDOWN_S", "0.2")
        parbackend.reset_breaker()
        _run_with_faults(monkeypatch, PURE_SRC, _pure_env(), "worker-exit:*")
        assert parbackend.breaker_state() in ("open", "half-open")
        assert "breaker-open" in _fault_kinds()
        assert not parbackend.dispatch_allowed() or parbackend.breaker_state() == "half-open"
        # cooldown elapses -> half-open -> a clean dispatch closes it
        time.sleep(0.25)
        assert parbackend.breaker_state() == "half-open"
        assert parbackend.dispatch_allowed()
        result, cp = _prepare(PURE_SRC)
        pool = WorkerPool(2)
        try:
            out = cp.run(deep_env(_pure_env()), pool=pool)
        finally:
            pool.shutdown()
        assert parbackend.breaker_state() == "closed"
        ref = run_program(result.program, deep_env(_pure_env()))
        assert states_equivalent(ref, out)

    def test_open_breaker_declines_dispatch(self, monkeypatch):
        monkeypatch.setenv("REPRO_BREAKER_THRESHOLD", "1")
        monkeypatch.setenv("REPRO_BREAKER_COOLDOWN_S", "60")
        parbackend.reset_breaker()
        parbackend.BREAKER.record_failure()
        assert parbackend.breaker_state() == "open"
        workmeter.reset()
        result, cp = _prepare(PURE_SRC)
        env = _pure_env()
        ref = run_program(result.program, deep_env(env))
        pool = WorkerPool(2)
        try:
            out = cp.run(deep_env(env), pool=pool)
        finally:
            pool.shutdown()
        assert states_equivalent(ref, out)  # serial lowering carried it
        key = next(iter(cp.chunks))
        assert not workmeter.chunk_imbalance(key)  # no dispatch happened

    def test_compile_fail_seam_falls_back_to_interp_shim(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "compile-fail")
        faultplan.reset()
        try:
            result = parallelize(PURE_SRC, AnalysisConfig.new_algorithm())
            cp = compile_program(result.program, result.decisions)
            assert cp.backend == "interp"
            assert "injected fault" in (cp.fallback_reason or "")
            env = _pure_env()
            ref = run_program(result.program, deep_env(env))
            out = cp.run(deep_env(env))
            assert states_equivalent(ref, out)
        finally:
            monkeypatch.delenv("REPRO_FAULTS")
            faultplan.reset()

    def test_execute_resilient_walks_the_ladder(self, monkeypatch):
        from repro.runtime import parexec

        result = parallelize(PURE_SRC, AnalysisConfig.new_algorithm())
        env = _pure_env()
        ref = run_program(result.program, deep_env(env))
        real_execute = parexec.execute

        def flaky_execute(prog, env2, **kw):
            if kw.get("backend") == "compiled-parallel":
                raise RuntimeError("synthetic rung failure")
            return real_execute(prog, env2, **kw)

        monkeypatch.setattr(parexec, "execute", flaky_execute)
        workmeter.reset()
        diagnostics.clear_runtime_trail()
        caller_env = deep_env(env)
        out = execute_resilient(
            result.program, caller_env,
            decisions=result.decisions, backend="compiled-parallel",
        )
        assert states_equivalent(ref, out)
        # the winning rung's arrays were committed back to the caller
        assert np.allclose(caller_env["y"], ref["y"])
        degs = workmeter.degradation_events()
        assert any(
            d["loop"] == "<program>" and d["from"] == "compiled-parallel"
            for d in degs
        )


# ---------------------------------------------------------------------------
# the full registry under every fault class
# ---------------------------------------------------------------------------

FAULT_CLASSES = [
    pytest.param("worker-exit", id="worker-exit"),
    pytest.param("hang:worker=0:chunk=0", id="hang"),
    pytest.param("corrupt-reply", id="corrupt-reply"),
    pytest.param("shm-attach-fail", id="shm-attach-fail"),
    pytest.param("cache-corrupt:*", id="cache-corrupt"),
]


@pytest.mark.parametrize("spec", FAULT_CLASSES)
@pytest.mark.parametrize("bench", all_benchmarks(), ids=lambda b: b.name)
def test_registry_survives_fault_class(bench, spec, monkeypatch, tmp_path):
    """Outputs cross-check, nothing leaks, the trail names what happened.

    Benchmarks whose small environments stay below the dispatch threshold
    never hit the dispatch seams — the contract still holds trivially
    (and the leakcheck fixture still audits segments and children).
    """
    from repro import cache

    monkeypatch.setenv("REPRO_EXEC_THREADS", "2")
    monkeypatch.setenv("REPRO_DISPATCH_DEADLINE_S", "0.5")
    if spec.startswith("cache-corrupt"):
        # give the corruption seam a real disk tier to damage
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache.enable()
    result = parallelize(bench.source, AnalysisConfig.new_algorithm())
    env = deep_env(bench.small_env())
    ref = run_program(result.program, deep_env(env))
    workmeter.reset()
    diagnostics.clear_runtime_trail()
    monkeypatch.setenv("REPRO_FAULTS", spec)
    faultplan.reset()
    try:
        if spec.startswith("cache-corrupt"):
            # the read path under corruption: drop the in-memory tiers so
            # the re-parallelize really reads (and corrupts) the disk
            # entries, then execute the recomputed result
            from repro.analysis.analyzer import _ANALYSIS_CACHE
            from repro.parallelizer.driver import _PARALLELIZE_CACHE

            _ANALYSIS_CACHE.clear()
            _PARALLELIZE_CACHE.clear()
            result = parallelize(bench.source, AnalysisConfig.new_algorithm())
        out = execute(
            result.program, env,
            decisions=result.decisions, backend="compiled-parallel",
        )
    finally:
        monkeypatch.delenv("REPRO_FAULTS")
        faultplan.reset()
        shutdown_pool()
    assert states_equivalent(ref, out)
    if workmeter.fault_events():
        # a fault fired: the diagnostics runtime trail must explain it
        assert diagnostics.runtime_trail()


# ---------------------------------------------------------------------------
# snapshot-free proofs: the static effect analysis licenses skipping the
# pre-dispatch snapshot when chunk re-runs are provably idempotent
# ---------------------------------------------------------------------------

#: staging kernel: ``t`` is read *and* written, but every read is
#: dominated by a same-subscript overwrite — re-running a chunk is
#: idempotent, so the snapshot may be skipped
STAGED_SRC = "for (i = 0; i < n; i++) { t[i] = a[i] + x[i]; y[i] = t[i] * 2.0; }"


def _staged_env():
    rng = np.random.default_rng(17)
    return {
        "n": N,
        "a": rng.random(N),
        "x": rng.random(N),
        "t": np.zeros(N),
        "y": np.zeros(N),
    }


class TestSnapshotFreeProofs:
    def test_staging_array_proven_snapshot_free(self):
        _, cp = _prepare(STAGED_SRC)
        (meta,) = cp.chunk_meta.values()
        assert meta["rw"] == ["t"]  # read+write overlap detected...
        assert meta["snapshot_free"] == ["t"]  # ...but proven idempotent
        assert meta["static"]["class"] == "chunk-disjoint"

    def test_self_update_loop_is_never_snapshot_free(self):
        _, cp = _prepare(SELF_SRC)
        (meta,) = cp.chunk_meta.values()
        assert meta["rw"] == ["y"]
        assert meta["snapshot_free"] == []  # y[i] = y[i] + ... must snapshot

    def test_snapshot_skip_survives_worker_exit(self, monkeypatch):
        # retries re-run chunks WITHOUT a restore; the write-before-read
        # proof is what keeps the output exact (checked in _run_with_faults)
        _, respawns = _run_with_faults(
            monkeypatch, STAGED_SRC, _staged_env(), "worker-exit"
        )
        assert respawns >= 1

    def test_kill_switch_restores_snapshots(self, monkeypatch):
        # REPRO_STATIC_EFFECTS=0 must disable the skip and still heal
        monkeypatch.setenv("REPRO_STATIC_EFFECTS", "0")
        _, respawns = _run_with_faults(
            monkeypatch, STAGED_SRC, _staged_env(), "worker-exit"
        )
        assert respawns >= 1
