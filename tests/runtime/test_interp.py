"""Interpreter tests."""

import numpy as np
import pytest

from repro.lang.cparser import parse_program
from repro.runtime.interp import InterpError, Interpreter, run_program


def run(src, env):
    return run_program(parse_program(src), env)


def test_scalar_arith():
    out = run("x = 2 + 3 * 4;", {})
    assert out["x"] == 14


def test_integer_division_truncates_toward_zero():
    out = run("a = -7 / 2; b = 7 / 2;", {})
    assert out["a"] == -3 and out["b"] == 3


def test_modulo_c_semantics():
    out = run("a = -7 % 2;", {})
    assert out["a"] == -1


def test_for_loop_sum():
    out = run("s = 0; for (i = 0; i < 10; i++) s = s + i;", {})
    assert out["s"] == 45


def test_inclusive_loop():
    out = run("s = 0; for (i = 1; i <= 5; i++) s = s + i;", {})
    assert out["s"] == 15


def test_if_else():
    out = run("if (x > 0) y = 1; else y = 2;", {"x": -1})
    assert out["y"] == 2


def test_while_and_break():
    out = run("x = 0; while (1) { x = x + 1; if (x > 4) break; }", {})
    assert out["x"] == 5


def test_array_store_load():
    env = {"a": np.zeros(5, dtype=np.int64)}
    out = run("for (i = 0; i < 5; i++) a[i] = i * i;", env)
    assert list(out["a"]) == [0, 1, 4, 9, 16]


def test_multidim_arrays():
    env = {"m": np.zeros((3, 3))}
    out = run("for (i=0;i<3;i++) for (j=0;j<3;j++) m[i][j] = i*10 + j;", env)
    assert out["m"][2][1] == 21


def test_postfix_increment_value():
    env = {"a": np.zeros(3, dtype=np.int64), "m": 0}
    out = run("a[m++] = 7; a[m++] = 8;", env)
    assert list(out["a"][:2]) == [7, 8]
    assert out["m"] == 2


def test_declaration_allocates():
    out = run("double buf[4]; buf[2] = 1.5; int k = 3;", {})
    assert out["buf"][2] == 1.5
    assert out["k"] == 3


def test_math_calls():
    out = run("x = sqrt(16.0) + fabs(-2.0);", {})
    assert out["x"] == 6.0


def test_unknown_function_raises():
    with pytest.raises(InterpError):
        run("x = mystery(1);", {})


def test_undefined_variable_raises():
    with pytest.raises(InterpError):
        run("x = y + 1;", {})


def test_out_of_bounds_raises():
    with pytest.raises(InterpError):
        run("a[10] = 1;", {"a": np.zeros(3)})


def test_compound_assignment():
    env = {"a": np.ones(3)}
    out = run("for (i=0;i<3;i++) a[i] += 2;", env)
    assert list(out["a"]) == [3.0, 3.0, 3.0]


def test_logical_short_circuit():
    # second operand would fault if evaluated
    out = run("x = 0; if (x != 0 && a[5] > 0) y = 1; else y = 2;", {"a": np.zeros(2)})
    assert out["y"] == 2


def test_ternary():
    out = run("y = x > 0 ? 10 : 20;", {"x": 5})
    assert out["y"] == 10


def test_op_counter():
    it = Interpreter({"s": 0}, op_counter=True)
    it.run(parse_program("for (i = 0; i < 4; i++) s = s + i;"))
    assert it.ops > 0


def test_paper_figure4_execution():
    env = {
        "xdos": np.array([1.0, 9.0, 2.0, 8.0, 3.0]),
        "t": 0.0,
        "width": 5.0,
        "npts": 5,
        "ind": np.zeros(5, dtype=np.int64),
        "m": 0,
    }
    out = run(
        """
        m = 0;
        for (j = 0; j < npts; j++) {
            if ((xdos[j] - t) < width)
                ind[m++] = j;
        }
        """,
        env,
    )
    assert out["m"] == 3
    assert list(out["ind"][:3]) == [0, 2, 4]  # strictly monotonic!
