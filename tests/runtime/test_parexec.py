"""Out-of-order execution tests: parallel-declared loops must be
order-insensitive; order-dependent loops must be caught."""

import numpy as np
import pytest

from repro.analysis import AnalysisConfig
from repro.benchmarks import all_benchmarks, get_benchmark
from repro.lang.astnodes import For
from repro.lang.cparser import parse_program
from repro.parallelizer import parallelize
from repro.runtime.interp import InterpError, run_program
from repro.runtime.parexec import execute_shuffled, states_equivalent


def deep_env(env):
    return {k: (v.copy() if isinstance(v, np.ndarray) else v) for k, v in env.items()}


def run_both(src, env, seed=1):
    result = parallelize(src, AnalysisConfig.new_algorithm())
    loops = [
        s
        for s in result.program.stmts
        if isinstance(s, For) and result.decisions[s.loop_id].parallel
    ]
    assert loops, "no top-level parallel loop"
    loop = loops[0]
    d = result.decisions[loop.loop_id]
    serial = run_program(result.program, deep_env(env))
    shuffled = execute_shuffled(result.program, loop, d, deep_env(env), seed=seed)
    return serial, shuffled, d


def test_simple_parallel_loop_order_insensitive():
    src = "for (i = 0; i < 10; i++) { a[i] = i * 2; }"
    serial, shuffled, d = run_both(src, {"a": np.zeros(10, dtype=np.int64)})
    assert states_equivalent(serial, shuffled, ignore=set(d.private))


def test_privates_isolated_per_iteration():
    src = "for (i = 0; i < 10; i++) { t = b[i] * 2; a[i] = t + 1; }"
    env = {"a": np.zeros(10), "b": np.arange(10.0)}
    serial, shuffled, d = run_both(src, env)
    assert "t" in d.private
    assert states_equivalent(serial, shuffled, ignore={"t"})


def test_reduction_order_insensitive():
    src = "for (i = 0; i < 12; i++) { s = s + a[i]; }"
    env = {"a": np.arange(12, dtype=np.int64), "s": 0}
    serial, shuffled, d = run_both(src, env)
    assert ("+", "s") in d.reductions
    assert serial["s"] == shuffled["s"]


def test_misclassified_private_would_raise():
    """If a SERIAL scalar were (wrongly) treated as private, the shuffled
    executor would hit a read of an uninitialized private.  Simulate the
    misclassification directly."""
    from repro.analysis.loopinfo import find_loop_nests
    from repro.analysis.normalize import normalize_program
    from repro.lang.cparser import parse_program

    src = "t = 0; for (i = 0; i < 5; i++) { a[i] = t; t = b[i]; }"
    prog = normalize_program(parse_program(src))
    loop = find_loop_nests(prog)[0].loop

    class FakeDecision:
        private = ["t"]  # WRONG: t carries a loop-carried dependence

    env = {"a": np.zeros(5), "b": np.arange(5.0), "t": 0.0}
    with pytest.raises(InterpError):
        execute_shuffled(prog, loop, FakeDecision, env, seed=3)


def test_order_dependent_loop_differs_when_forced():
    """Sanity: a genuinely serial loop gives different results shuffled
    (this is what the compiler protects against)."""
    from repro.analysis.loopinfo import find_loop_nests
    from repro.analysis.normalize import normalize_program
    from repro.lang.cparser import parse_program

    src = "for (i = 1; i < 8; i++) { a[i] = a[i-1] + 1; }"
    prog = normalize_program(parse_program(src))
    loop = find_loop_nests(prog)[0].loop

    class FakeDecision:
        private = []

    env = lambda: {"a": np.zeros(8, dtype=np.int64)}
    serial = run_program(prog, env())
    shuffled = execute_shuffled(prog, loop, FakeDecision, env(), seed=5)
    assert not states_equivalent(serial, shuffled)


@pytest.mark.parametrize(
    "name", [b.name for b in all_benchmarks()]
)
def test_benchmarks_parallel_loops_order_insensitive(name):
    """For every benchmark kernel the NewAlgo pipeline parallelizes, the
    shuffled execution matches serial execution on the real input."""
    bench = get_benchmark(name)
    result = parallelize(bench.source, AnalysisConfig.new_algorithm())
    loops = [
        s
        for s in result.program.stmts
        if isinstance(s, For) and result.decisions[s.loop_id].parallel
    ]
    if not loops:
        pytest.skip("no top-level parallel loop under NewAlgo")
    env = bench.small_env()
    serial = run_program(result.program, deep_env(env))
    for loop in loops:
        d = result.decisions[loop.loop_id]
        shuffled = execute_shuffled(result.program, loop, d, deep_env(env), seed=7)
        assert states_equivalent(serial, shuffled, ignore=set(d.private) | {"_shuffle"}), name


# ---------------------------------------------------------------------------
# _index_of hardening (compound/cast init headers) + compiled backend
# ---------------------------------------------------------------------------


def test_index_of_accepts_compound_init():
    from repro.lang.astnodes import Compound
    from repro.runtime.parexec import _index_of

    prog = parse_program("for (i = 0; i < n; i++) { a[i] = i; }")
    loop = prog.stmts[0]
    loop.init = Compound([loop.init])
    assert _index_of(loop) == "i"


def test_index_of_accepts_cast_style_unary_init():
    from repro.lang.astnodes import ExprStmt, Id, IncDec, UnOp
    from repro.runtime.parexec import _index_of

    prog = parse_program("for (i = 0; i < n; i++) { a[i] = i; }")
    loop = prog.stmts[0]
    # an expression init whose index sits under a cast-style unary wrapper
    loop.init = ExprStmt(UnOp("+", IncDec("++", Id("i"), False)))
    assert _index_of(loop) == "i"


def test_index_of_falls_back_to_step():
    from repro.lang.astnodes import ExprStmt, Num
    from repro.runtime.parexec import _index_of

    prog = parse_program("for (i = 0; i < n; i++) { a[i] = i; }")
    loop = prog.stmts[0]
    loop.init = ExprStmt(Num(0))  # init reveals nothing; step has i++
    assert _index_of(loop) == "i"


def test_index_of_raises_indexnotfound_when_unidentifiable():
    from repro.lang.astnodes import ExprStmt, Num
    from repro.runtime.parexec import IndexNotFound, _index_of

    prog = parse_program("for (i = 0; i < n; i++) { a[i] = i; }")
    loop = prog.stmts[0]
    loop.init = ExprStmt(Num(0))
    loop.step = ExprStmt(Num(0))
    with pytest.raises(IndexNotFound, match="loop index"):
        _index_of(loop)
    # IndexNotFound stays a ValueError for pre-existing catch sites
    assert issubclass(IndexNotFound, ValueError)


@pytest.mark.parametrize(
    "name",
    [b.name for b in all_benchmarks()],
)
def test_benchmarks_shuffled_compiled_backend_matches_interp(name):
    bench = get_benchmark(name)
    result = parallelize(bench.source, AnalysisConfig.new_algorithm())
    loops = [
        s
        for s in result.program.stmts
        if isinstance(s, For) and result.decisions[s.loop_id].parallel
    ]
    if not loops:
        pytest.skip("no top-level parallel loop under NewAlgo")
    env = bench.small_env()
    for loop in loops:
        d = result.decisions[loop.loop_id]
        a = execute_shuffled(result.program, loop, d, deep_env(env), seed=11, backend="interp")
        b = execute_shuffled(result.program, loop, d, deep_env(env), seed=11, backend="compiled")
        assert states_equivalent(a, b, ignore=set(d.private)), name
