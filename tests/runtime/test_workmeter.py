"""Work-metering tests: measured profiles validate the analytic ones."""

import numpy as np
import pytest

from repro.benchmarks import get_benchmark
from repro.lang.cparser import parse_program
from repro.runtime.workmeter import meter_benchmark_kernel, meter_loop_work


def test_uniform_loop_has_uniform_work():
    prog = parse_program("for (i = 0; i < 10; i++) { s = s + a[i] * 2; }")
    loop = prog.stmts[0]
    w = meter_loop_work(prog, loop, {"a": np.ones(10), "s": 0.0})
    assert len(w) == 10
    assert w.std() == 0


def test_triangular_loop_work_grows():
    prog = parse_program(
        "for (i = 0; i < 8; i++) { for (j = 0; j <= i; j++) { s = s + 1; } }"
    )
    loop = prog.stmts[0]
    w = meter_loop_work(prog, loop, {"s": 0})
    assert np.all(np.diff(w) > 0)  # each row strictly more work


def test_amgmk_measured_work_tracks_row_nnz():
    """The analytic AMGmk profile (work ∝ nnz/row) matches measurement."""
    bench = get_benchmark("AMGmk")
    w = meter_benchmark_kernel(bench, nest_index=1)
    env = bench.small_env()
    nnz = np.diff(env["A_i"])[: len(w)]
    # correlation between measured ops and row nnz should be ~1
    corr = np.corrcoef(w, nnz)[0, 1]
    assert corr > 0.99


def test_sddmm_measured_work_tracks_col_nnz():
    bench = get_benchmark("SDDMM")
    w = meter_benchmark_kernel(bench, nest_index=1)
    env = bench.small_env()
    counts = np.bincount(env["col_val"], minlength=env["n_cols"]).astype(float)
    corr = np.corrcoef(w, counts[: len(w)])[0, 1]
    assert corr > 0.99


def test_ua_work_is_uniform_across_elements():
    bench = get_benchmark("UA(transf)")
    w = meter_benchmark_kernel(bench, nest_index=1)
    assert len(w) == bench.small_env()["LELT"]
    assert w.std() / w.mean() < 0.01


def test_requires_top_level_loop():
    prog = parse_program("x = 1;")
    other = parse_program("for (i = 0; i < 2; i++) { }").stmts[0]
    with pytest.raises(ValueError):
        meter_loop_work(prog, other, {})


def test_format_summary_empty_without_measurements():
    """Cost-model-only records must not render blank timing rows."""
    from repro.runtime import workmeter

    workmeter.reset()
    try:
        assert workmeter.format_summary() == ""
        # a prediction alone belongs to the decision table, not the
        # timing block — still nothing to print
        workmeter.record_prediction(
            "L0", choice="compiled", tier="vector", trips=8, work=8,
            predicted={"compiled": 0.5},
        )
        assert workmeter.format_summary() == ""
        # a real measurement brings the block back
        workmeter.record_loop("L1", 0.25)
        out = workmeter.format_summary()
        assert "loop timings" in out and "L1" in out
        assert "L0" not in out
    finally:
        workmeter.reset()
