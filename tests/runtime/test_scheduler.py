"""Scheduler tests + property tests on the makespan bounds."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.scheduler import (
    balanced_chunk_bounds,
    dynamic_assign,
    max_thread_work,
    static_chunks,
    static_max_work,
)


class TestStaticChunks:
    def test_partitions_exactly(self):
        chunks = static_chunks(10, 3)
        assert chunks == [(0, 4), (4, 7), (7, 10)]

    def test_covers_all_iterations(self):
        chunks = static_chunks(17, 5)
        assert chunks[0][0] == 0 and chunks[-1][1] == 17
        for (_a, b), (c, _d) in zip(chunks, chunks[1:]):
            assert b == c

    def test_more_threads_than_iterations(self):
        chunks = static_chunks(2, 4)
        sizes = [b - a for a, b in chunks]
        assert sum(sizes) == 2

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            static_chunks(4, 0)


class TestStaticMaxWork:
    def test_balanced(self):
        w = np.ones(16)
        assert static_max_work(w, 4) == 4.0

    def test_imbalanced_tail(self):
        w = np.array([1.0, 1.0, 1.0, 100.0])
        assert static_max_work(w, 4) == 100.0

    def test_empty(self):
        assert static_max_work(np.array([]), 4) == 0.0


class TestDynamicAssign:
    def test_balances_skewed_load(self):
        w = np.array([100.0] + [1.0] * 99)
        stat = static_max_work(w, 4)
        dyn, _ = dynamic_assign(w, 4, chunk=1)
        assert dyn <= stat

    def test_chunk_count(self):
        _, n = dynamic_assign(np.ones(10), 2, chunk=3)
        assert n == 4

    def test_single_thread(self):
        total, _ = dynamic_assign(np.arange(5.0), 1)
        assert total == 10.0


class TestBalancedChunkBoundsDegenerate:
    """Degenerate inputs must fall back to the uniform static split (or
    empty) rather than producing empty/overlapping/short chunks."""

    def _assert_covers(self, bounds, lo, n):
        assert bounds[0][0] == lo and bounds[-1][1] == lo + n
        for (_a, b), (c, _d) in zip(bounds, bounds[1:]):
            assert b == c
        assert all(b > a for a, b in bounds)

    def test_all_zero_weights_uses_static_split(self):
        bounds = balanced_chunk_bounds(np.zeros(12), 4)
        assert bounds == [(0, 3), (3, 6), (6, 9), (9, 12)]

    def test_single_iteration(self):
        assert balanced_chunk_bounds(np.array([7.0]), 4) == [(0, 1)]

    def test_single_iteration_zero_weight(self):
        assert balanced_chunk_bounds(np.array([0.0]), 8, lo=5) == [(5, 6)]

    def test_empty_weights(self):
        assert balanced_chunk_bounds(np.array([]), 4) == []

    def test_weights_shorter_than_trips_degrade_to_static(self):
        # a stale/truncated inspector profile must not chunk the wrong range
        bounds = balanced_chunk_bounds(np.array([5.0, 1.0]), 3, trips=9)
        self._assert_covers(bounds, 0, 9)
        assert bounds == [(0, 3), (3, 6), (6, 9)]

    def test_weights_longer_than_trips_degrade_to_static(self):
        bounds = balanced_chunk_bounds(np.ones(20), 2, lo=4, trips=6)
        self._assert_covers(bounds, 4, 6)

    def test_trips_zero_is_empty(self):
        assert balanced_chunk_bounds(np.ones(4), 2, trips=0) == []

    def test_matching_trips_keeps_weighted_split(self):
        w = np.array([100.0, 1.0, 1.0, 1.0])
        assert balanced_chunk_bounds(w, 2, trips=4) == balanced_chunk_bounds(w, 2)

    def test_nonfinite_weights_use_static_split(self):
        bounds = balanced_chunk_bounds(np.array([1.0, np.inf, 1.0, 1.0]), 2)
        assert bounds == [(0, 2), (2, 4)]

    def test_nchunks_must_be_positive(self):
        with pytest.raises(ValueError):
            balanced_chunk_bounds(np.ones(4), 0)


@given(
    st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=60),
    st.integers(1, 16),
    st.sampled_from(["static", "dynamic"]),
)
@settings(max_examples=200, deadline=None)
def test_makespan_bounds(work, p, schedule):
    """The makespan always lies in [total/p, total] and >= max element."""
    w = np.array(work)
    total = w.sum()
    makespan, _ = max_thread_work(w, p, schedule)
    assert makespan <= total + 1e-9
    assert makespan >= total / p - 1e-9
    assert makespan >= w.max() - 1e-9


@given(
    st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=60),
    st.integers(1, 16),
)
@settings(max_examples=100, deadline=None)
def test_dynamic_never_much_worse_than_static(work, p):
    """Greedy dispatch with unit chunks is within 2x of any schedule's
    makespan lower bound (classic list-scheduling guarantee)."""
    w = np.array(work)
    dyn, _ = dynamic_assign(w, p, chunk=1)
    lower = max(w.max(), w.sum() / p)
    assert dyn <= 2 * lower + 1e-9
