"""Shared-memory worker pool tests: dispatch, declines, teardown, leaks."""

from __future__ import annotations

import os

import numpy as np
import pytest
from multiprocessing import shared_memory

from repro.analysis import AnalysisConfig
from repro.benchmarks import get_benchmark
from repro.parallelizer import parallelize
from repro.runtime.compile import compile_program, execute
from repro.runtime.interp import run_program
from repro.runtime.parbackend import MIN_PAR_TRIPS, WorkerPool, get_pool, shutdown_pool
from repro.runtime.parexec import states_equivalent


def deep_env(env):
    return {k: (v.copy() if isinstance(v, np.ndarray) else v) for k, v in env.items()}


@pytest.fixture
def pool():
    p = WorkerPool(2)
    yield p
    p.shutdown()


def test_parallel_execution_matches_serial(pool):
    bench = get_benchmark("AMGmk")
    result = parallelize(bench.source, AnalysisConfig.new_algorithm())
    env = bench.small_env()
    ref = run_program(result.program, deep_env(env))
    cp = compile_program(result.program, result.decisions, parallel=True)
    assert cp.chunks, "AMGmk's certified loop should compile a chunk function"
    out = cp.run(deep_env(env), pool=pool)
    assert states_equivalent(ref, out)


def test_run_loop_declines_below_min_trips(pool):
    bench = get_benchmark("AMGmk")
    result = parallelize(bench.source, AnalysisConfig.new_algorithm())
    cp = compile_program(result.program, result.decisions, parallel=True)
    pool.ensure_program(cp)
    key = sorted(cp.chunks)[0]
    # nothing adopted, tiny range: both decline paths return None
    assert pool.run_loop(key, 0, MIN_PAR_TRIPS - 1, {}, ()) is None


def test_release_env_defers_unlink_until_shutdown(pool):
    env = {"a": np.arange(1000.0), "b": np.ones((20, 30)), "n": 7}
    orig_a = env["a"]
    adopted = pool.adopt_env(env)
    seg_names = [seg.name for (_, seg, _) in adopted.values()]
    assert seg_names, "arrays should have been adopted"
    # while adopted: env holds shared views, segments openable by name
    for name in seg_names:
        probe = shared_memory.SharedMemory(name=name)
        probe.close()
    env["a"][0] = 123.0  # write through the shared view
    pool.release_env(adopted, env)
    # results copied back into the original arrays, env restored
    assert env["a"] is orig_a and env["a"][0] == 123.0
    # segments are cached for the next adoption, not yet unlinked
    for name in seg_names:
        probe = shared_memory.SharedMemory(name=name)
        probe.close()
    # re-adopting the same shapes reuses the cached segments
    env2 = {"a": np.arange(1000.0) * 2, "b": np.zeros((20, 30)), "n": 7}
    adopted2 = pool.adopt_env(env2)
    assert sorted(seg.name for (_, seg, _) in adopted2.values()) == sorted(seg_names)
    assert env2["a"][5] == 10.0  # fresh inputs copied into the reused view
    pool.release_env(adopted2, env2)
    # a shape change retires the stale segment for that name
    env3 = {"a": np.arange(10.0), "b": np.ones((20, 30)), "n": 7}
    adopted3 = pool.adopt_env(env3)
    old_a = next(seg.name for n, (_, seg, _) in adopted.items() if n == "a")
    assert adopted3["a"][1].name != old_a
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=old_a)
    pool.release_env(adopted3, env3)
    # shutdown unlinks everything: reattach must fail
    live = [seg.name for (_, seg, _) in adopted3.values()]
    pool.shutdown()
    for name in live:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


def test_shutdown_terminates_workers(pool):
    procs = list(pool._procs)
    assert all(p.is_alive() for p in procs)
    pool.shutdown()
    for p in procs:
        p.join(timeout=5)
    assert not any(p.is_alive() for p in procs)


def test_no_segment_leak_across_full_execute(monkeypatch):
    """End-to-end: compiled-parallel execute leaves no shared memory behind."""
    monkeypatch.setenv("REPRO_EXEC_THREADS", "2")
    bench = get_benchmark("AMGmk")
    result = parallelize(bench.source, AnalysisConfig.new_algorithm())
    env = deep_env(bench.small_env())
    ref = run_program(result.program, deep_env(env))
    created = []
    real_init = shared_memory.SharedMemory.__init__

    def spy(self, name=None, create=False, size=0, *a, **kw):
        real_init(self, name=name, create=create, size=size, *a, **kw)
        if create:
            created.append(self.name)

    monkeypatch.setattr(shared_memory.SharedMemory, "__init__", spy)
    try:
        out = execute(
            result.program, env, decisions=result.decisions, backend="compiled-parallel"
        )
    finally:
        shutdown_pool()
    assert states_equivalent(ref, out)
    assert created, "parallel execute should have adopted arrays"
    for name in created:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


def test_get_pool_resizes_and_restarts(monkeypatch):
    monkeypatch.setenv("REPRO_EXEC_THREADS", "2")
    p1 = get_pool()
    assert p1.size == 2
    p2 = get_pool(3)
    assert p2.size == 3 and p2 is not p1
    assert not p1._check_alive()  # old pool was shut down
    shutdown_pool()
    assert not p2._check_alive()
