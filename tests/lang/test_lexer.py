"""Unit tests for the lexer."""

import pytest

from repro.lang.lexer import LexError, tokenize


def kinds(src):
    return [(t.kind, t.text) for t in tokenize(src) if t.kind != "EOF"]


def test_identifiers_and_keywords():
    assert kinds("for foo int _bar") == [
        ("KW", "for"),
        ("ID", "foo"),
        ("KW", "int"),
        ("ID", "_bar"),
    ]


def test_integers():
    assert kinds("0 42 007") == [("INT", "0"), ("INT", "42"), ("INT", "007")]


def test_floats():
    out = kinds("1.5 2e3 0.25")
    assert [k for k, _ in out] == ["FLOAT", "FLOAT", "FLOAT"]


def test_float_with_signed_exponent():
    out = kinds("1e-5")
    assert out[0][0] == "FLOAT"


def test_multichar_punctuators_maximal_munch():
    assert kinds("++ += <= == && <<") == [
        ("PUNCT", "++"),
        ("PUNCT", "+="),
        ("PUNCT", "<="),
        ("PUNCT", "=="),
        ("PUNCT", "&&"),
        ("PUNCT", "<<"),
    ]


def test_line_comment_skipped():
    assert kinds("a // comment\n b") == [("ID", "a"), ("ID", "b")]


def test_block_comment_skipped():
    assert kinds("a /* x\n y */ b") == [("ID", "a"), ("ID", "b")]


def test_unterminated_block_comment_raises():
    with pytest.raises(LexError):
        tokenize("/* never ends")


def test_pragma_token():
    toks = tokenize("#pragma omp parallel for\nx;")
    assert toks[0].kind == "PRAGMA"
    assert toks[0].text == "omp parallel for"


def test_other_preprocessor_skipped():
    assert kinds("#include <x.h>\na") == [("ID", "a")]


def test_string_literal():
    out = kinds('printf("hi %d", x)')
    assert ("STR", '"hi %d"') in out


def test_positions_tracked():
    toks = tokenize("a\n  b")
    assert (toks[0].line, toks[0].col) == (1, 1)
    assert (toks[1].line, toks[1].col) == (2, 3)


def test_unknown_character_raises():
    with pytest.raises(LexError):
        tokenize("a @ b")


def test_eof_token_always_last():
    assert tokenize("")[-1].kind == "EOF"
