"""Printer tests: rendering and parse/print round-trips."""

import pytest

from repro.lang.cparser import parse_expr, parse_program, parse_stmt
from repro.lang.printer import to_c


@pytest.mark.parametrize(
    "src",
    [
        "a + b * c",
        "(a + b) * c",
        "a[i][j]",
        "f(x, y + 1)",
        "-a",
        "a < b && c != d",
        "a / (b - c)",
    ],
)
def test_expr_round_trip(src):
    e = parse_expr(src)
    printed = to_c(e)
    # re-parsing the printed form gives a structurally identical tree
    assert to_c(parse_expr(printed)) == printed


@pytest.mark.parametrize(
    "src",
    [
        "x = a + 1;",
        "a[i] += b[i];",
        "for (i = 0; i < n; i = i + 1)\n{\n}\n",
        "if (a > 0)\n    x = 1;\nelse\n    x = 2;\n",
        "while (a < b)\n    a = a + 1;\n",
        "int x = 5;",
        "break;",
    ],
)
def test_stmt_round_trip(src):
    s = parse_stmt(src)
    printed = to_c(s)
    assert to_c(parse_stmt(printed)) == printed


def test_program_round_trip_paper_loop():
    src = """
    irownnz = 0;
    for (i = 0; i < num_rows; i++){
        if (A_i[i+1] - A_i[i] > 0)
            A_rownnz[irownnz++] = i;
    }
    """
    p = parse_program(src)
    printed = to_c(p)
    assert to_c(parse_program(printed)) == printed


def test_pragmas_are_emitted_before_loop():
    p = parse_program("for (i = 0; i < n; i++) { a[i] = 0; }")
    loop = p.stmts[0]
    loop.pragmas.append("omp parallel for private(i)")
    out = to_c(p)
    assert out.index("#pragma omp parallel for") < out.index("for (")


def test_precedence_parens_minimal():
    e = parse_expr("a * (b + c)")
    assert to_c(e) == "a * (b + c)"
    e2 = parse_expr("a * b + c")
    assert to_c(e2) == "a * b + c"


def test_nested_subscript_print():
    e = parse_expr("y[ind[j]]")
    assert to_c(e) == "y[ind[j]]"
