"""Unit tests for the C-subset parser."""

import pytest

from repro.lang.astnodes import (
    ArrayAccess,
    Assign,
    BinOp,
    Break,
    Call,
    Compound,
    Decl,
    ExprStmt,
    FloatNum,
    For,
    Id,
    If,
    IncDec,
    Num,
    Pragma,
    Ternary,
    UnOp,
    While,
)
from repro.lang.cparser import ParseError, parse_expr, parse_program, parse_stmt


class TestExpressions:
    def test_precedence_mul_over_add(self):
        e = parse_expr("a + b * c")
        assert isinstance(e, BinOp) and e.op == "+"
        assert isinstance(e.rhs, BinOp) and e.rhs.op == "*"

    def test_parentheses(self):
        e = parse_expr("(a + b) * c")
        assert e.op == "*"
        assert isinstance(e.lhs, BinOp) and e.lhs.op == "+"

    def test_left_associativity(self):
        e = parse_expr("a - b - c")
        assert e.op == "-"
        assert isinstance(e.lhs, BinOp) and e.lhs.op == "-"
        assert isinstance(e.rhs, Id) and e.rhs.name == "c"

    def test_relational_and_logical(self):
        e = parse_expr("a < b && c >= d")
        assert e.op == "&&"
        assert e.lhs.op == "<"
        assert e.rhs.op == ">="

    def test_unary_minus(self):
        e = parse_expr("-a + b")
        assert e.op == "+"
        assert isinstance(e.lhs, UnOp) and e.lhs.op == "-"

    def test_multidim_array_access_collapsed(self):
        e = parse_expr("idel[iel][0][j][i]")
        assert isinstance(e, ArrayAccess)
        assert e.name == "idel"
        assert len(e.indices) == 4

    def test_postfix_increment(self):
        e = parse_expr("m++")
        assert isinstance(e, IncDec) and not e.prefix and e.op == "++"

    def test_prefix_increment(self):
        e = parse_expr("++m")
        assert isinstance(e, IncDec) and e.prefix

    def test_incdec_inside_subscript(self):
        e = parse_expr("ind[m++]")
        assert isinstance(e, ArrayAccess)
        assert isinstance(e.indices[0], IncDec)

    def test_incdec_requires_lvalue(self):
        with pytest.raises(ParseError):
            parse_expr("5++")

    def test_call(self):
        e = parse_expr("sqrt(x + 1)")
        assert isinstance(e, Call) and e.name == "sqrt" and len(e.args) == 1

    def test_call_multiple_args(self):
        e = parse_expr("pow(a, 2)")
        assert len(e.args) == 2

    def test_ternary(self):
        e = parse_expr("a < b ? a : b")
        assert isinstance(e, Ternary)

    def test_cast_dropped(self):
        e = parse_expr("(int)(a / b)")
        assert isinstance(e, BinOp) and e.op == "/"

    def test_float_literal(self):
        e = parse_expr("0.5")
        assert isinstance(e, FloatNum)

    def test_hex_literal(self):
        e = parse_expr("0x10")
        assert isinstance(e, Num) and e.value == 16


class TestStatements:
    def test_assignment(self):
        s = parse_stmt("x = 1;")
        assert isinstance(s, Assign) and s.op == "="

    def test_compound_assignment(self):
        s = parse_stmt("x += y * 2;")
        assert isinstance(s, Assign) and s.op == "+="

    def test_assignment_requires_lvalue(self):
        with pytest.raises(ParseError):
            parse_stmt("1 = x;")

    def test_array_assignment(self):
        s = parse_stmt("a[i][j] = 0;")
        assert isinstance(s.lhs, ArrayAccess)

    def test_expression_statement(self):
        s = parse_stmt("m++;")
        assert isinstance(s, ExprStmt) and isinstance(s.expr, IncDec)

    def test_declaration_scalar(self):
        s = parse_stmt("int x = 5;")
        assert isinstance(s, Decl) and s.name == "x" and isinstance(s.init, Num)

    def test_declaration_array(self):
        s = parse_stmt("double a[10][20];")
        assert isinstance(s, Decl) and len(s.dims) == 2

    def test_declaration_multiple(self):
        s = parse_stmt("int a, b;")
        assert isinstance(s, Compound) and len(s.stmts) == 2

    def test_for_loop(self):
        s = parse_stmt("for (i = 0; i < n; i++) x = x + 1;")
        assert isinstance(s, For)
        assert isinstance(s.init, Assign)
        assert isinstance(s.cond, BinOp)

    def test_for_with_decl_init(self):
        s = parse_stmt("for (int i = 0; i < n; ++i) { }")
        assert isinstance(s.init, Decl)

    def test_if_else(self):
        s = parse_stmt("if (a > 0) x = 1; else x = 2;")
        assert isinstance(s, If) and s.els is not None

    def test_dangling_else_binds_inner(self):
        s = parse_stmt("if (a) if (b) x = 1; else x = 2;")
        assert s.els is None
        assert isinstance(s.then, If) and s.then.els is not None

    def test_while(self):
        s = parse_stmt("while (a < b) a = a + 1;")
        assert isinstance(s, While)

    def test_break(self):
        s = parse_stmt("{ break; }")
        assert isinstance(s.stmts[0], Break)

    def test_pragma(self):
        s = parse_stmt("#pragma omp parallel for")
        assert isinstance(s, Pragma) and "omp" in s.text

    def test_empty_statement(self):
        s = parse_stmt(";")
        assert isinstance(s, Compound) and not s.stmts

    def test_unterminated_block_raises(self):
        with pytest.raises(ParseError):
            parse_stmt("{ x = 1;")

    def test_continue_rejected(self):
        with pytest.raises(ParseError):
            parse_stmt("continue;")


class TestPrograms:
    def test_paper_figure4(self):
        src = """
        m = 0;
        for (j = 0; j < npts; j++) {
            if ((xdos[j] - t) < width)
                ind[m++] = j;
        }
        """
        p = parse_program(src)
        assert len(p.stmts) == 2
        assert isinstance(p.stmts[1], For)

    def test_nested_loops(self):
        src = "for(i=0;i<n;i++){for(j=0;j<m;j++){a[i][j]=0;}}"
        p = parse_program(src)
        loop = p.stmts[0]
        assert isinstance(loop.body.stmts[0], For)

    def test_clone_is_deep(self):
        p = parse_program("x = a + 1;")
        q = p.clone()
        q.stmts[0].rhs = Num(0)
        assert isinstance(p.stmts[0].rhs, BinOp)
