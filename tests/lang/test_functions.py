"""Function parsing + inline-expansion tests (paper §4.1 preprocessing)."""

import numpy as np
import pytest

from repro.analysis import AnalysisConfig
from repro.lang.functions import InlineError, parse_and_inline, parse_translation_unit
from repro.lang.printer import to_c
from repro.parallelizer import parallelize
from repro.runtime.interp import run_program

AMG_SPLIT = """
void fill_rownnz(int num_rows, int A_i[], int A_rownnz[]) {
    int irownnz = 0;
    int i;
    for (i = 0; i < num_rows; i++){
        if (A_i[i+1] - A_i[i] > 0)
            A_rownnz[irownnz++] = i;
    }
}

void spmv(int num_rownnz, int A_rownnz[], int A_i[], int A_j[],
          double A_data[], double x_data[], double y_data[]) {
    int i;
    for (i = 0; i < num_rownnz; i++){
        int m = A_rownnz[i];
        double tempx = y_data[m];
        int jj;
        for (jj = A_i[m]; jj < A_i[m+1]; jj++)
            tempx += A_data[jj] * x_data[A_j[jj]];
        y_data[m] = tempx;
    }
}

void main() {
    fill_rownnz(num_rows, A_i, A_rownnz);
    spmv(num_rownnz, A_rownnz, A_i, A_j, A_data, x_data, y_data);
}
"""


class TestParsing:
    def test_functions_recognized(self):
        unit = parse_translation_unit(AMG_SPLIT)
        assert set(unit.functions) == {"fill_rownnz", "spmv", "main"}

    def test_param_kinds(self):
        unit = parse_translation_unit(AMG_SPLIT)
        fill = unit.functions["fill_rownnz"]
        assert [p.is_array for p in fill.params] == [False, True, True]

    def test_top_level_statements_still_allowed(self):
        unit = parse_translation_unit("x = 1;\nvoid f() { y = 2; }\nz = 3;")
        assert len(unit.top_level) == 2
        assert "f" in unit.functions

    def test_main_body_fallback(self):
        unit = parse_translation_unit("x = 1; y = 2;")
        assert len(unit.main_body()) == 2


class TestInlining:
    def test_amg_split_inlines_flat(self):
        prog = parse_and_inline(AMG_SPLIT)
        text = to_c(prog)
        assert "fill_rownnz(" not in text
        assert "spmv(" not in text
        assert "A_rownnz[" in text

    def test_inlined_version_analyzes_like_handwritten(self):
        """The whole point of §4.1: after inlining, the analysis sees the
        fill and the kernel together and parallelizes the kernel."""
        prog = parse_and_inline(AMG_SPLIT)
        result = parallelize(prog, AnalysisConfig.new_algorithm())
        par = [d for d in result.decisions.values() if d.parallel and d.depth == 0]
        assert len(par) == 1
        assert any("num_rownnz" in c.text for c in par[0].checks)

    def test_inlined_execution_matches_handwritten(self):
        prog = parse_and_inline(AMG_SPLIT)
        indptr = np.array([0, 2, 2, 5, 9])
        env = {
            "num_rows": 4,
            "num_rownnz": 3,
            "A_i": indptr,
            "A_j": np.arange(9) % 4,
            "A_data": np.ones(9),
            "x_data": np.ones(4),
            "y_data": np.zeros(4),
            "A_rownnz": np.zeros(4, dtype=np.int64),
        }
        out = run_program(prog, env)
        assert list(out["A_rownnz"][:3]) == [0, 2, 3]
        assert out["y_data"][0] == 2.0

    def test_scalar_args_bind_by_value(self):
        src = """
        void bump(int v) { v = v + 1; q = v; }
        void main() { x = 5; bump(x); }
        """
        prog = parse_and_inline(src)
        out = run_program(prog, {})
        assert out["x"] == 5  # caller's x unchanged
        assert out["q"] == 6

    def test_locals_renamed_no_capture(self):
        src = """
        void f(int a[]) { int t; t = 1; a[0] = t; }
        void main() { t = 99; f(arr); keep = t; }
        """
        prog = parse_and_inline(src)
        out = run_program(prog, {"arr": np.zeros(2, dtype=np.int64)})
        assert out["keep"] == 99

    def test_two_calls_get_distinct_locals(self):
        src = """
        void f(int a[], int base) { int i; for (i = 0; i < 3; i++) a[i] = base + i; }
        void main() { f(u, 0); f(v, 10); }
        """
        prog = parse_and_inline(src)
        out = run_program(prog, {"u": np.zeros(3, dtype=np.int64), "v": np.zeros(3, dtype=np.int64)})
        assert list(out["u"]) == [0, 1, 2]
        assert list(out["v"]) == [10, 11, 12]

    def test_math_calls_left_intact(self):
        src = "void main() { x = sqrt(4.0); }"
        prog = parse_and_inline(src)
        out = run_program(prog, {})
        assert out["x"] == 2.0

    def test_recursion_guard(self):
        src = "void f() { f(); } void main() { f(); }"
        with pytest.raises(InlineError):
            parse_and_inline(src)

    def test_arity_mismatch_rejected(self):
        src = "void f(int a) { q = a; } void main() { f(1, 2); }"
        with pytest.raises(InlineError):
            parse_and_inline(src)

    def test_nested_call_in_loop_inlined(self):
        src = """
        void work(int a[], int i) { a[i] = i * 2; }
        void main() { for (i = 0; i < 4; i++) { work(arr, i); } }
        """
        prog = parse_and_inline(src)
        out = run_program(prog, {"arr": np.zeros(4, dtype=np.int64)})
        assert list(out["arr"]) == [0, 2, 4, 6]
