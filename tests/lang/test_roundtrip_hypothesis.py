"""Property-based parser/printer round-trip tests.

Random ASTs are printed to C and re-parsed; printing the re-parse must be
a fixed point, and numeric evaluation must be preserved for expression
trees.
"""

from hypothesis import given, settings, strategies as st

from repro.lang.astnodes import (
    ArrayAccess,
    Assign,
    BinOp,
    Call,
    Compound,
    Expression,
    For,
    Id,
    If,
    Num,
    UnOp,
)
from repro.lang.cparser import parse_expr, parse_stmt
from repro.lang.printer import to_c

NAMES = ["a", "b", "i", "n"]
BIN_OPS = ["+", "-", "*", "/", "%", "<", "<=", ">", ">=", "==", "!=", "&&", "||"]


@st.composite
def expr_nodes(draw, depth=0) -> Expression:
    if depth >= 3:
        kind = draw(st.sampled_from(["num", "id"]))
    else:
        kind = draw(st.sampled_from(["num", "id", "bin", "un", "arr", "call"]))
    if kind == "num":
        return Num(draw(st.integers(0, 99)))
    if kind == "id":
        return Id(draw(st.sampled_from(NAMES)))
    if kind == "bin":
        return BinOp(
            draw(st.sampled_from(BIN_OPS)),
            draw(expr_nodes(depth=depth + 1)),
            draw(expr_nodes(depth=depth + 1)),
        )
    if kind == "un":
        return UnOp(draw(st.sampled_from(["-", "!", "+"])), draw(expr_nodes(depth=depth + 1)))
    if kind == "arr":
        return ArrayAccess(
            draw(st.sampled_from(["x", "y"])),
            [draw(expr_nodes(depth=depth + 1)) for _ in range(draw(st.integers(1, 2)))],
        )
    return Call("exp", [draw(expr_nodes(depth=depth + 1))])


@st.composite
def stmt_nodes(draw, depth=0):
    if depth >= 2:
        kind = "assign"
    else:
        kind = draw(st.sampled_from(["assign", "if", "for", "block"]))
    if kind == "assign":
        lhs = draw(st.sampled_from([Id("a"), ArrayAccess("x", [Id("i")])]))
        return Assign(lhs, draw(st.sampled_from(["=", "+=", "*="])), draw(expr_nodes()))
    if kind == "if":
        els = draw(st.booleans())
        return If(
            draw(expr_nodes()),
            draw(stmt_nodes(depth=depth + 1)),
            draw(stmt_nodes(depth=depth + 1)) if els else None,
        )
    if kind == "for":
        return For(
            Assign(Id("i"), "=", Num(0)),
            BinOp("<", Id("i"), Id("n")),
            Assign(Id("i"), "=", BinOp("+", Id("i"), Num(1))),
            draw(stmt_nodes(depth=depth + 1)),
        )
    return Compound([draw(stmt_nodes(depth=depth + 1)) for _ in range(draw(st.integers(0, 3)))])


@given(expr_nodes())
@settings(max_examples=300, deadline=None)
def test_expr_print_parse_fixed_point(e):
    printed = to_c(e)
    reparsed = parse_expr(printed)
    assert to_c(reparsed) == printed


@given(expr_nodes())
@settings(max_examples=200, deadline=None)
def test_expr_reparse_preserves_value(e):
    import numpy as np

    from repro.runtime.interp import Interpreter

    env = {
        "a": 3,
        "b": -2,
        "i": 1,
        "n": 4,
        "x": np.arange(200) % 7,
        "y": np.arange(200) % 5,
    }
    printed = to_c(e)
    reparsed = parse_expr(printed)
    try:
        v1 = Interpreter(dict(env)).eval(e)
    except Exception:
        return  # division by zero etc. — value comparison not applicable
    v2 = Interpreter(dict(env)).eval(reparsed)
    assert v1 == v2


@given(stmt_nodes())
@settings(max_examples=200, deadline=None)
def test_stmt_print_parse_fixed_point(s):
    printed = to_c(s)
    reparsed = parse_stmt(printed)
    assert to_c(reparsed) == printed
