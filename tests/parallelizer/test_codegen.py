"""Codegen and run-time-check evaluation tests."""


from repro.analysis import AnalysisConfig
from repro.benchmarks import get_benchmark
from repro.dependence.extended import RuntimeCheck
from repro.parallelizer import parallelize
from repro.parallelizer.codegen import (
    counter_max_bindings,
    emit_openmp,
    evaluate_runtime_check,
)

AMG = get_benchmark("AMGmk").source


def test_schedule_clause_appended():
    result = parallelize(AMG, AnalysisConfig.new_algorithm())
    out = emit_openmp(result, schedule="dynamic", chunk=32)
    assert "schedule(dynamic, 32)" in out


def test_schedule_none_leaves_pragma():
    result = parallelize(AMG, AnalysisConfig.new_algorithm())
    out = emit_openmp(result)
    assert "schedule(" not in out


def test_emit_is_idempotent_on_result():
    result = parallelize(AMG, AnalysisConfig.new_algorithm())
    emit_openmp(result, schedule="dynamic")
    # the pragmas must be restored afterwards
    out = result.to_c()
    assert "schedule(" not in out
    assert "#pragma omp parallel for" in out


def test_evaluate_runtime_check_true_false():
    chk = RuntimeCheck("-1+num_rownnz <= irownnz_max")
    assert evaluate_runtime_check(chk, {"num_rownnz": 4, "irownnz_max": 4})
    assert evaluate_runtime_check(chk, {"num_rownnz": 5, "irownnz_max": 4})
    assert not evaluate_runtime_check(chk, {"num_rownnz": 6, "irownnz_max": 4})


def test_amg_check_holds_on_real_input():
    """End-to-end: the emitted if-clause is TRUE on the actual workload, so
    the guarded loop really runs in parallel (as in the paper's runs)."""
    bench = get_benchmark("AMGmk")
    result = parallelize(bench.source, AnalysisConfig.new_algorithm())
    env = bench.small_env()
    bindings = counter_max_bindings(result, env)
    assert "irownnz_max" in bindings
    full_env = {**env, **bindings}
    checks = [c for d in result.decisions.values() for c in d.checks]
    assert checks
    for chk in checks:
        assert evaluate_runtime_check(chk, full_env), chk.text


def test_sddmm_check_holds_on_real_input():
    bench = get_benchmark("SDDMM")
    result = parallelize(bench.source, AnalysisConfig.new_algorithm())
    env = bench.small_env()
    bindings = counter_max_bindings(result, env)
    full_env = {**env, **bindings}
    checks = [c for d in result.decisions.values() for c in d.checks]
    assert checks
    for chk in checks:
        assert evaluate_runtime_check(chk, full_env), chk.text
