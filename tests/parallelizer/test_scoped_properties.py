"""Body-scoped property analysis: fill + consumer inside a serial outer
loop (the inlined pattern of paper §4.1 when kernels run per time step)."""

from repro.analysis import AnalysisConfig
from repro.parallelizer import parallelize

TIMELOOP = """
for (t = 0; t < T; t++){
    irownnz = 0;
    for (i = 0; i < num_rows; i++){
        if (A_i[i+1] - A_i[i] > 0)
            A_rownnz[irownnz++] = i;
    }
    for (i = 0; i < num_rownnz; i++){
        m = A_rownnz[i];
        y_data[m] = y_data[m] + x_data[m];
    }
}
"""


def test_consumer_inside_time_loop_parallelized():
    res = parallelize(TIMELOOP, AnalysisConfig.new_algorithm())
    par = [d for d in res.decisions.values() if d.parallel]
    assert len(par) == 1
    d = par[0]
    assert d.depth == 1
    assert d.checks and "irownnz_max" in d.checks[0].text


def test_time_loop_itself_stays_serial():
    res = parallelize(TIMELOOP, AnalysisConfig.new_algorithm())
    outer = [d for d in res.decisions.values() if d.depth == 0]
    assert outer and not outer[0].parallel


def test_classical_finds_nothing_inside():
    res = parallelize(TIMELOOP, AnalysisConfig.classical())
    assert not res.parallel_loops


def test_property_does_not_leak_to_unrelated_loop():
    """A consumer in a DIFFERENT outer loop (after the array was clobbered)
    must not reuse the stale property."""
    src = TIMELOOP + """
    for (q = 0; q < num_rows; q++){
        A_rownnz[perm[q]] = q;
    }
    for (q = 0; q < num_rownnz; q++){
        z[A_rownnz[q]] = q;
    }
    """
    res = parallelize(src, AnalysisConfig.new_algorithm())
    # the z-loop (uses clobbered A_rownnz) must be serial
    z_loops = [
        d for d in res.decisions.values() if d.depth == 0 and d.index == "q" and not d.parallel
    ]
    assert len(z_loops) == 2  # both the clobber loop and the consumer
