"""Explanation-report tests."""

from repro.analysis import AnalysisConfig
from repro.benchmarks import get_benchmark
from repro.parallelizer import parallelize
from repro.parallelizer.explain import explain_all, explain_loop

AMG = get_benchmark("AMGmk").source


def result():
    return parallelize(AMG, AnalysisConfig.new_algorithm())


def test_explain_parallel_loop_mentions_everything():
    res = result()
    lid = next(l for l, d in res.decisions.items() if d.parallel)
    text = explain_loop(res, lid)
    assert "PARALLEL" in text
    assert "irownnz_max" in text
    assert "private" in text
    assert "dependence graph: clean" in text
    assert "A_rownnz" in text  # property in scope
    assert "#pragma" in text


def test_explain_serial_loop_names_blocker():
    res = result()
    lid = next(
        l for l, d in res.decisions.items() if not d.parallel and d.depth == 0
    )
    text = explain_loop(res, lid)
    assert "serial" in text
    assert "irownnz" in text  # the blocking scalar
    assert "Phase-1 SVD" in text


def test_explain_includes_scalar_classes():
    res = result()
    lid = next(l for l, d in res.decisions.items() if d.parallel)
    text = explain_loop(res, lid)
    assert "tempx" in text and "private" in text


def test_explain_unknown_loop():
    res = result()
    assert "no such loop" in explain_loop(res, "L9999")


def test_explain_all_covers_every_loop():
    res = result()
    text = explain_all(res)
    for lid in res.decisions:
        assert lid in text


def test_explain_indirection_rendered():
    res = result()
    lid = next(l for l, d in res.decisions.items() if d.parallel)
    text = explain_loop(res, lid)
    assert "via A_rownnz" in text
