"""Incremental (per-nest) analysis and decision caching.

Editing one nest of a multi-nest program must re-run phases 1/2,
certification, and lowering only for the changed nest: every untouched
top-level nest is served from the per-nest caches (``nest`` in the
analyzer, ``nestdec`` in the parallelizer driver), and the warm result is
indistinguishable from a fully cold run of the edited source.

The per-nest tier is production-only: ``verify_ir`` (the suite-wide
debug-assertions mode) disables it so lint faults and injected errors
genuinely re-run, which is why every test here pins ``verify_ir=False``.
"""

from __future__ import annotations

import dataclasses

from repro.analysis import AnalysisConfig, analyze_program
from repro.analysis.analyzer import _ANALYSIS_CACHE, _NEST_CACHE
from repro.benchmarks import get_benchmark
from repro.ir import perfstats
from repro.lang.cparser import _STMT_CACHE
from repro.parallelizer import parallelize
from repro.parallelizer.driver import _NESTDEC_CACHE, _PARALLELIZE_CACHE


def _incremental_config() -> AnalysisConfig:
    return dataclasses.replace(AnalysisConfig.new_algorithm(), verify_ir=False)


def _clear_all_caches() -> None:
    _ANALYSIS_CACHE.clear()
    _PARALLELIZE_CACHE.clear()
    _NEST_CACHE.clear()
    _NESTDEC_CACHE.clear()
    _STMT_CACHE.clear()


def _decision_tuples(result):
    """Positionally comparable decision facts (loop ids are a global
    counter, so names differ between runs)."""
    return [
        (d.index, d.depth, d.parallel, d.reason, d.pragma,
         sorted(d.private), sorted(d.reductions))
        for d in result.decisions.values()
    ]


SRC_THREE_NESTS = """
m = 0;
for (i = 0; i < n; i++) {
    p[i] = m;
    m = m + 1;
}
for (i = 0; i < n; i++) {
    x[p[i]] = x[p[i]] + 1;
}
for (i = 0; i < n; i++) {
    y[i] = y[i] * 2;
}
"""


class TestEditOneNest:
    def test_untouched_nests_hit_both_per_nest_caches(self):
        """Acceptance: mutate one nest of CG; the other top-level nests
        are cache hits in both the analyzer and the decision driver, and
        the warm verdicts are identical to a fully cold run."""
        src = get_benchmark("CG").source
        assert src.count("\nfor") >= 2
        config = _incremental_config()
        _clear_all_caches()
        perfstats.reset_counters()
        parallelize(src, config)
        assert perfstats.STATS.nest_misses >= 3
        assert perfstats.STATS.nestdec_misses >= 3
        n_nests = perfstats.STATS.nest_misses

        # edit exactly one nest: the q = w copy gains a scaling factor
        edited = src.replace("q[j] = w[j];", "q[j] = w[j] * 2;")
        assert edited != src
        before = perfstats.STATS.as_dict()
        warm = parallelize(edited, config)
        after = perfstats.STATS.as_dict()
        # every untouched nest is a per-nest hit; only the edited one re-runs
        assert after["nest_hits"] - before["nest_hits"] == n_nests - 1
        assert after["nest_misses"] - before["nest_misses"] == 1
        assert after["nestdec_hits"] - before["nestdec_hits"] == n_nests - 1
        assert after["nestdec_misses"] - before["nestdec_misses"] == 1

        # warm-after-edit result == fully cold run of the edited source
        _clear_all_caches()
        cold = parallelize(edited, config)
        assert _decision_tuples(warm) == _decision_tuples(cold)
        assert warm.to_c() == cold.to_c()
        assert sorted(map(str, warm.analysis.properties.all_properties())) == sorted(
            map(str, cold.analysis.properties.all_properties())
        )

    def test_editing_a_producer_nest_invalidates_its_consumers(self):
        """The decision key covers the property slice *and* the source of
        each property's producer loop, so editing the fill loop must not
        serve the consumer's stale decision."""
        config = _incremental_config()
        _clear_all_caches()
        cold = parallelize(SRC_THREE_NESTS, config)
        assert any(d.parallel for d in cold.decisions.values())

        # break the monotonic fill: the consumer's x[p[i]] scatter verdict
        # must be recomputed (and flip to serial), not replayed
        edited = SRC_THREE_NESTS.replace("m = m + 1;", "m = 0;")
        warm = parallelize(edited, config)
        _clear_all_caches()
        cold2 = parallelize(edited, config)
        assert _decision_tuples(warm) == _decision_tuples(cold2)
        assert warm.to_c() == cold2.to_c()

    def test_verify_ir_disables_the_per_nest_tier(self):
        """Debug-assertions mode must re-run every nest (lint faults and
        injected errors depend on it), so the per-nest caches stay cold."""
        config = dataclasses.replace(AnalysisConfig.new_algorithm(), verify_ir=True)
        _clear_all_caches()
        perfstats.reset_counters()
        parallelize(SRC_THREE_NESTS, config)
        parallelize(SRC_THREE_NESTS + "\n// touch\n", config)
        assert perfstats.STATS.nest_hits == 0
        assert perfstats.STATS.nestdec_hits == 0
        assert len(_NEST_CACHE) == 0
        assert len(_NESTDEC_CACHE) == 0

    def test_whole_program_rerun_is_all_nest_hits(self):
        """Re-analyzing unchanged source with a cold whole-program cache
        (comment-only edit) reuses every nest."""
        config = _incremental_config()
        _clear_all_caches()
        perfstats.reset_counters()
        analyze_program(SRC_THREE_NESTS, config)
        n = perfstats.STATS.nest_misses
        assert n == 3
        analyze_program("// header comment\n" + SRC_THREE_NESTS, config)
        assert perfstats.STATS.nest_hits == n
        assert perfstats.STATS.nest_misses == n
