"""Pipeline capability monotonicity (differential testing).

The three pipelines form a capability chain: anything classical Cetus
parallelizes, Cetus+BaseAlgo must too; anything +BaseAlgo parallelizes,
+NewAlgo must too.  Verified on random fill+consumer programs and on the
whole benchmark suite.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis import AnalysisConfig
from repro.benchmarks import all_benchmarks
from repro.parallelizer import parallelize

CONFIGS = [
    AnalysisConfig.classical(),
    AnalysisConfig.base_algorithm(),
    AnalysisConfig.new_algorithm(),
]


def covered_count(src) -> list:
    """Loops that execute inside SOME parallel region (parallel themselves
    or enclosed by a parallel ancestor)."""
    counts = []
    for cfg in CONFIGS:
        res = parallelize(src, cfg)
        counts.append(
            sum(1 for d in res.decisions.values() if d.parallel or d.enclosed_by_parallel)
        )
    return counts


@st.composite
def programs(draw):
    inc = draw(st.sampled_from([1, 2, -1]))
    guard = draw(st.booleans())
    val = draw(st.sampled_from(["i", "2*i", "xs[i]"]))
    consumer = draw(st.sampled_from(["direct", "bounds", "affine"]))
    fill = f"b[m] = {val}; m = m + {inc};"
    if guard:
        fill = f"if (xs[i] > 2) {{ {fill} }}"
    src = f"m = 0;\nfor (i = 0; i < n; i++) {{ {fill} }}\n"
    if consumer == "direct":
        src += "for (q = 0; q < nw; q++) { y[b[q]] = q; }\n"
    elif consumer == "bounds":
        src += "for (q = 0; q < nw; q++) { for (k = b[q]; k < b[q+1]; k++) { y[k] = q; } }\n"
    else:
        src += "for (q = 0; q < nw; q++) { y[q] = b[q]; }\n"
    return src


@given(programs())
@settings(max_examples=120, deadline=None)
def test_random_programs_capability_chain(src):
    c, b, n = covered_count(src)
    assert c <= b <= n


def test_benchmark_suite_capability_chain():
    for bench in all_benchmarks():
        c, b, n = covered_count(bench.source)
        assert c <= b <= n, bench.name


def test_every_parallel_loop_stays_covered():
    """Per-loop: a loop parallel under a weaker pipeline is parallel OR
    enclosed by a parallel ancestor under every stronger pipeline (the new
    algorithm may hoist the parallelism outward, never drop it)."""
    for bench in all_benchmarks():
        per_cfg = {}
        for cfg in CONFIGS:
            res = parallelize(bench.source, cfg)
            # identify loops positionally (loop ids are per-run)
            flat = [
                (d.parallel, d.parallel or d.enclosed_by_parallel)
                for _, d in sorted(res.decisions.items())
            ]
            per_cfg[cfg.name] = flat
        for (a, _), (_, b_cov) in zip(per_cfg["Cetus"], per_cfg["Cetus+BaseAlgo"]):
            assert (not a) or b_cov, bench.name
        for (a, _), (_, b_cov) in zip(
            per_cfg["Cetus+BaseAlgo"], per_cfg["Cetus+NewAlgo"]
        ):
            assert (not a) or b_cov, bench.name
