"""End-to-end parallelizer tests: the paper's examples, pragma emission,
and the three pipelines' differing outcomes."""


from repro.analysis import AnalysisConfig
from repro.parallelizer import format_report, parallelize

AMG = """
irownnz = 0;
for (i = 0; i < num_rows; i++){
    adiag = A_i[i+1] - A_i[i];
    if (adiag > 0)
        A_rownnz[irownnz++] = i;
}
for (i = 0; i < num_rownnz; i++){
    m = A_rownnz[i];
    tempx = y_data[m];
    for (jj = A_i[m]; jj < A_i[m+1]; jj++)
        tempx += A_data[jj] * x_data[A_j[jj]];
    y_data[m] = tempx;
}
"""


def decisions_by_depth(res):
    return {(d.depth, d.index): d for d in res.decisions.values()}


class TestAMG:
    def test_new_algorithm_parallelizes_outer(self):
        res = parallelize(AMG, AnalysisConfig.new_algorithm())
        kernel = [
            d
            for d in res.decisions.values()
            if d.depth == 0 and d.parallel and d.checks
        ]
        assert len(kernel) == 1
        d = kernel[0]
        assert d.checks[0].text == "-1+num_rownnz <= irownnz_max"
        assert set(d.private) >= {"jj", "m", "tempx"}
        assert ("+", "tempx") not in d.reductions  # tempx is private, not reduction

    def test_pragma_text_matches_paper_shape(self):
        """Paper Figure 8's directive: parallel for + if + private."""
        res = parallelize(AMG, AnalysisConfig.new_algorithm())
        out = res.to_c()
        assert "#pragma omp parallel for if(-1+num_rownnz <= irownnz_max)" in out
        assert "private(" in out

    def test_classical_parallelizes_inner_reduction(self):
        res = parallelize(AMG, AnalysisConfig.classical())
        inner = [d for d in res.decisions.values() if d.parallel]
        assert len(inner) == 1
        assert inner[0].depth == 1
        assert ("+", "tempx") in inner[0].reductions

    def test_fill_loop_stays_serial(self):
        res = parallelize(AMG, AnalysisConfig.new_algorithm())
        fills = [
            d
            for d in res.decisions.values()
            if d.depth == 0 and not d.parallel and "irownnz" in d.reason
        ]
        assert fills


class TestEnclosedLoops:
    def test_inner_marked_enclosed_when_outer_parallel(self):
        res = parallelize(
            "for (i=0;i<n;i++){ for (j=0;j<m;j++){ a[i][j] = 0; } }",
            AnalysisConfig.classical(),
        )
        inner = [d for d in res.decisions.values() if d.depth == 1]
        assert inner[0].enclosed_by_parallel
        assert not inner[0].parallel


class TestPragmas:
    def test_reduction_clause_emitted(self):
        res = parallelize(
            "for (i=0;i<n;i++){ s = s + a[i]; }", AnalysisConfig.classical()
        )
        out = res.to_c()
        assert "reduction(+:s)" in out

    def test_no_pragma_on_serial_loops(self):
        res = parallelize(
            "for (i=1;i<n;i++){ a[i] = a[i-1]; }", AnalysisConfig.classical()
        )
        assert "#pragma" not in res.to_c()

    def test_ineligible_loop_reported(self):
        res = parallelize(
            "for (i=0;i<n;i++){ x = rand(); }", AnalysisConfig.new_algorithm()
        )
        d = list(res.decisions.values())[0]
        assert not d.parallel and "ineligible" in d.reason


class TestReport:
    def test_format_report_contains_decisions(self):
        res = parallelize(AMG, AnalysisConfig.new_algorithm())
        text = format_report(res)
        assert "PARALLEL" in text
        assert "Cetus+NewAlgo" in text
        assert "A_rownnz" in text  # the property is listed

    def test_parallel_loops_accessor(self):
        res = parallelize(AMG, AnalysisConfig.new_algorithm())
        assert len(res.parallel_loops) == 1
