"""Golden-output tests: the annotated AMG program, end to end.

Guards against codegen/printer/decision regressions: the full annotated
output for the paper's flagship example is pinned, and annotated output
round-trips through the parser with pragma re-attachment.
"""

from repro.analysis import AnalysisConfig
from repro.benchmarks import get_benchmark
from repro.lang import parse_program, to_c
from repro.lang.astnodes import For, attach_pragmas
from repro.parallelizer import parallelize

GOLDEN = """\
irownnz = 0;
for (i = 0; i < num_rows; i = i + 1)
{
    adiag = A_i[i + 1] - A_i[i];
    if (adiag > 0)
    {
        _temp_0 = irownnz;
        irownnz = irownnz + 1;
        A_rownnz[_temp_0] = i;
    }
}
#pragma omp parallel for if(-1+num_rownnz <= irownnz_max) private(jj, m, tempx)
for (i = 0; i < num_rownnz; i = i + 1)
{
    m = A_rownnz[i];
    tempx = y_data[m];
    for (jj = A_i[m]; jj < A_i[m + 1]; jj = jj + 1)
        tempx = tempx + A_data[jj] * x_data[A_j[jj]];
    y_data[m] = tempx;
}
"""


def test_amg_annotated_output_is_golden():
    result = parallelize(get_benchmark("AMGmk").source, AnalysisConfig.new_algorithm())
    assert result.to_c() == GOLDEN


def test_annotated_output_round_trips_with_pragma_attachment():
    result = parallelize(get_benchmark("AMGmk").source, AnalysisConfig.new_algorithm())
    text = result.to_c()
    reparsed = attach_pragmas(parse_program(text))
    assert to_c(reparsed) == text
    loops = [s for s in reparsed.stmts if isinstance(s, For)]
    assert loops[1].pragmas and loops[1].pragmas[0].startswith("omp parallel for")
    assert not loops[0].pragmas


def test_pragma_attachment_inside_nested_blocks():
    src = """
    for (t = 0; t < T; t++) {
        #pragma omp parallel for
        for (i = 0; i < n; i++) { a[i] = 0; }
    }
    """
    prog = attach_pragmas(parse_program(src))
    outer = prog.stmts[0]
    inner = outer.body.stmts[0]
    assert isinstance(inner, For)
    assert inner.pragmas == ["omp parallel for"]


def test_trailing_pragma_preserved():
    prog = attach_pragmas(parse_program("x = 1;\n#pragma once\n"))
    from repro.lang.astnodes import Pragma

    assert isinstance(prog.stmts[-1], Pragma)
