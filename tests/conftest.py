"""Suite-wide defaults.

The IR/SVD invariant linter (``AnalysisConfig.verify_ir``) is on for the
whole test suite unless the environment already chose: structural bugs
should fail loudly here even though the production default is off.
"""

import os

os.environ.setdefault("REPRO_VERIFY_IR", "1")
