"""Whole-program analysis/parallelization result caching.

Analysis is a pure function of (source text, config), so results are
cached by ``(sha256(source), AnalysisConfig.fingerprint())``.  Cached and
cold results must be indistinguishable, AST inputs must bypass the cache,
and a second run of the Table-1/Figure-17 driver must not re-run any
analysis (the paper's compile-time-only claim is only credible if our own
harness does not multiply the compile cost).

The caches hold pristine snapshots and every call returns a private
clone, so a consumer that mutates its result — the parallelizer attaching
pragmas being the in-tree example — must never be able to poison the
cache for later callers.
"""

import dataclasses

from repro.lang.astnodes import For

from repro.analysis import AnalysisConfig, analyze_program
from repro.analysis.analyzer import _ANALYSIS_CACHE
from repro.ir import perfstats
from repro.lang.cparser import parse_program
from repro.parallelizer import parallelize
from repro.parallelizer.driver import _PARALLELIZE_CACHE

SRC = """
m = 0;
for (i = 0; i < n; i++) {
    p[i] = m;
    m = m + 1;
}
for (i = 0; i < n; i++) {
    x[p[i]] = x[p[i]] + 1;
}
"""


class TestFingerprint:
    def test_equal_configs_share_fingerprint(self):
        assert AnalysisConfig.new_algorithm().fingerprint() == AnalysisConfig().fingerprint()

    def test_distinct_configs_differ(self):
        fps = {
            AnalysisConfig.classical().fingerprint(),
            AnalysisConfig.base_algorithm().fingerprint(),
            AnalysisConfig.new_algorithm().fingerprint(),
            dataclasses.replace(AnalysisConfig(), max_depth=3).fingerprint(),
        }
        assert len(fps) == 4

    def test_covers_every_field(self):
        fp = AnalysisConfig().fingerprint()
        for f in dataclasses.fields(AnalysisConfig):
            assert f.name in fp

    def test_verification_flags_segregate_cache_entries(self):
        """``verify_ir`` / ``verify_certificates`` change analysis behaviour
        (lint diagnostics, certificate audit), so each combination must get
        its own fingerprint — and therefore its own result-cache entry."""
        base = AnalysisConfig.new_algorithm()
        fps = {
            dataclasses.replace(base, verify_ir=False, verify_certificates=True).fingerprint(),
            dataclasses.replace(base, verify_ir=True, verify_certificates=True).fingerprint(),
            dataclasses.replace(base, verify_ir=False, verify_certificates=False).fingerprint(),
            dataclasses.replace(base, verify_ir=True, verify_certificates=False).fingerprint(),
        }
        assert len(fps) == 4


def _pragma_count(program) -> int:
    return sum(len(n.pragmas) for n in program.walk() if isinstance(n, For))


class TestAnalysisCache:
    def test_second_analysis_is_a_cache_hit(self):
        config = AnalysisConfig.new_algorithm()
        cold = analyze_program(SRC, config)
        before = perfstats.STATS.analysis_hits
        warm = analyze_program(SRC, config)
        assert perfstats.STATS.analysis_hits == before + 1
        # hits return a private clone, never the cache entry itself
        assert warm is not cold
        assert warm.program is not cold.program
        assert sorted(map(str, warm.properties.all_properties())) == sorted(
            map(str, cold.properties.all_properties())
        )
        assert [n.loop.loop_id for nst in warm.nests for n in nst.walk()] == [
            n.loop.loop_id for nst in cold.nests for n in nst.walk()
        ]

    def test_cached_equals_cold_rerun(self):
        config = AnalysisConfig.new_algorithm()
        warm = analyze_program(SRC, config)
        _ANALYSIS_CACHE.clear()
        cold = analyze_program(SRC, config)
        assert warm is not cold
        assert sorted(map(str, warm.properties.all_properties())) == sorted(
            map(str, cold.properties.all_properties())
        )
        # loop ids come from a global counter, so compare shapes, not names
        assert len(warm.loop_results) == len(cold.loop_results)
        assert len(warm.phase1_results) == len(cold.phase1_results)

    def test_config_isolation(self):
        new = analyze_program(SRC, AnalysisConfig.new_algorithm())
        classical = analyze_program(SRC, AnalysisConfig.classical())
        assert new is not classical
        assert classical.config.array_analysis is False

    def test_ast_input_bypasses_cache(self):
        prog = parse_program(SRC)
        before = dict(perfstats.STATS.as_dict())
        res = analyze_program(prog, AnalysisConfig.new_algorithm())
        assert res.nests
        assert perfstats.STATS.analysis_hits == before["analysis_hits"]
        assert perfstats.STATS.analysis_misses == before["analysis_misses"]

    def test_mutating_a_result_does_not_poison_the_cache(self):
        config = AnalysisConfig.new_algorithm()
        first = analyze_program(SRC, config)
        # scribble on everything a consumer could reach
        for nst in first.nests:
            for n in nst.walk():
                n.loop.pragmas.append("junk pragma")
        first.program.stmts.clear()
        for prop in list(first.properties.all_properties()):
            first.properties.kill(prop.array)
        second = analyze_program(SRC, config)
        assert _pragma_count(second.program) == 0
        assert second.program.stmts
        assert second.properties.all_properties()


class TestParallelizeCache:
    def test_second_parallelize_is_a_cache_hit(self):
        config = AnalysisConfig.new_algorithm()
        cold = parallelize(SRC, config)
        before = perfstats.STATS.parallelize_hits
        warm = parallelize(SRC, config)
        assert perfstats.STATS.parallelize_hits == before + 1
        # hits return a private clone, never the cache entry itself
        assert warm is not cold
        assert warm.program is not cold.program
        assert warm.program is warm.analysis.program
        assert warm.to_c() == cold.to_c()
        assert list(warm.decisions) == list(cold.decisions)

    def test_parallelize_does_not_poison_analysis_cache(self):
        """Regression: pragma attachment must stay out of the analysis cache.

        parallelize() annotates the AnalysisResult it gets from
        analyze_program; analysis-only consumers asking for the same
        (source, config) afterwards must still see an unannotated program —
        including a result they were already holding.
        """
        config = AnalysisConfig.new_algorithm()
        held = analyze_program(SRC, config)
        assert _pragma_count(held.program) == 0
        result = parallelize(SRC, config)
        assert result.parallel_loops  # the annotation actually happened
        assert _pragma_count(held.program) == 0  # held object untouched
        after = analyze_program(SRC, config)
        assert _pragma_count(after.program) == 0  # cache entry untouched

    def test_mutating_a_result_does_not_poison_the_cache(self):
        config = AnalysisConfig.new_algorithm()
        first = parallelize(SRC, config)
        for nst in first.analysis.nests:
            for n in nst.walk():
                n.loop.pragmas.append("junk pragma")
        for d in first.decisions.values():
            d.private.append("junk_var")
        second = parallelize(SRC, config)
        assert "junk" not in second.to_c()
        assert all("junk_var" not in d.private for d in second.decisions.values())

    def test_cached_equals_cold_decisions(self):
        config = AnalysisConfig.new_algorithm()
        warm = parallelize(SRC, config)
        _PARALLELIZE_CACHE.clear()
        _ANALYSIS_CACHE.clear()
        cold = parallelize(SRC, config)
        # loop ids come from a global counter; compare decisions positionally
        assert len(warm.decisions) == len(cold.decisions)
        for wd, cd in zip(warm.decisions.values(), cold.decisions.values()):
            assert (wd.index, wd.depth, wd.parallel, wd.reason, wd.pragma) == (
                cd.index,
                cd.depth,
                cd.parallel,
                cd.reason,
                cd.pragma,
            )
        assert warm.to_c() == cold.to_c()

    def test_budget_segregates_cache_entries(self):
        """A degraded (budget-limited) result must never be served to an
        unlimited-budget caller, and vice versa: the budget is part of the
        config fingerprint, so the two populate distinct cache entries."""
        from repro.budget import AnalysisBudget

        src = SRC.replace("p[", "bc_p[").replace("x[", "bc_x[")
        full = AnalysisConfig.new_algorithm()
        tight = dataclasses.replace(full, budget=AnalysisBudget(max_simplify_steps=1))

        degraded = parallelize(src, tight)  # cold: populates the tight entry
        assert degraded.analysis.failed_nests
        assert not degraded.parallel_loops

        clean = parallelize(src, full)  # must MISS, not reuse the degraded entry
        assert not clean.analysis.failed_nests
        assert clean.parallel_loops

        # warm in both directions: each fingerprint keeps its own snapshot
        before = perfstats.STATS.parallelize_hits
        degraded2 = parallelize(src, tight)
        clean2 = parallelize(src, full)
        assert perfstats.STATS.parallelize_hits == before + 2
        assert degraded2.analysis.failed_nests and not degraded2.parallel_loops
        assert not clean2.analysis.failed_nests and clean2.parallel_loops
        # diagnostics survive the clone-on-return path
        assert [d.kind for d in degraded2.diagnostics] == [
            d.kind for d in degraded.diagnostics
        ]

    def test_repeated_pipeline_runs_analyze_once(self):
        """Acceptance: run the Table1+Fig17 driver twice, analysis runs once."""
        from repro.experiments.fig17 import format_fig17
        from repro.experiments.table1 import format_table1

        def run_driver():
            return format_table1() + "\n" + format_fig17()

        first = run_driver()  # warms the caches (possibly already warm)
        _PARALLELIZE_CACHE.clear()
        _ANALYSIS_CACHE.clear()
        perfstats.reset_counters()
        second = run_driver()
        misses_after_cold = perfstats.STATS.analysis_misses
        assert misses_after_cold > 0
        third = run_driver()
        # the second in-process run added zero analysis work
        assert perfstats.STATS.analysis_misses == misses_after_cold
        assert perfstats.STATS.parallelize_hits > 0
        assert first == second == third
