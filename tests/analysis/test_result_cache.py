"""Whole-program analysis/parallelization result caching.

Analysis is a pure function of (source text, config), so results are
cached by ``(sha256(source), AnalysisConfig.fingerprint())``.  Cached and
cold results must be indistinguishable, AST inputs must bypass the cache,
and a second run of the Table-1/Figure-17 driver must not re-run any
analysis (the paper's compile-time-only claim is only credible if our own
harness does not multiply the compile cost).
"""

import dataclasses

from repro.analysis import AnalysisConfig, analyze_program
from repro.analysis.analyzer import _ANALYSIS_CACHE
from repro.ir import perfstats
from repro.lang.cparser import parse_program
from repro.parallelizer import parallelize
from repro.parallelizer.driver import _PARALLELIZE_CACHE

SRC = """
m = 0;
for (i = 0; i < n; i++) {
    p[i] = m;
    m = m + 1;
}
for (i = 0; i < n; i++) {
    x[p[i]] = x[p[i]] + 1;
}
"""


class TestFingerprint:
    def test_equal_configs_share_fingerprint(self):
        assert AnalysisConfig.new_algorithm().fingerprint() == AnalysisConfig().fingerprint()

    def test_distinct_configs_differ(self):
        fps = {
            AnalysisConfig.classical().fingerprint(),
            AnalysisConfig.base_algorithm().fingerprint(),
            AnalysisConfig.new_algorithm().fingerprint(),
            dataclasses.replace(AnalysisConfig(), max_depth=3).fingerprint(),
        }
        assert len(fps) == 4

    def test_covers_every_field(self):
        fp = AnalysisConfig().fingerprint()
        for f in dataclasses.fields(AnalysisConfig):
            assert f.name in fp


class TestAnalysisCache:
    def test_second_analysis_is_a_cache_hit(self):
        config = AnalysisConfig.new_algorithm()
        cold = analyze_program(SRC, config)
        before = perfstats.STATS.analysis_hits
        warm = analyze_program(SRC, config)
        assert perfstats.STATS.analysis_hits == before + 1
        assert warm is cold

    def test_cached_equals_cold_rerun(self):
        config = AnalysisConfig.new_algorithm()
        warm = analyze_program(SRC, config)
        _ANALYSIS_CACHE.clear()
        cold = analyze_program(SRC, config)
        assert warm is not cold
        assert sorted(map(str, warm.properties.all_properties())) == sorted(
            map(str, cold.properties.all_properties())
        )
        # loop ids come from a global counter, so compare shapes, not names
        assert len(warm.loop_results) == len(cold.loop_results)
        assert len(warm.phase1_results) == len(cold.phase1_results)

    def test_config_isolation(self):
        new = analyze_program(SRC, AnalysisConfig.new_algorithm())
        classical = analyze_program(SRC, AnalysisConfig.classical())
        assert new is not classical
        assert classical.config.array_analysis is False

    def test_ast_input_bypasses_cache(self):
        prog = parse_program(SRC)
        before = dict(perfstats.STATS.as_dict())
        res = analyze_program(prog, AnalysisConfig.new_algorithm())
        assert res.nests
        assert perfstats.STATS.analysis_hits == before["analysis_hits"]
        assert perfstats.STATS.analysis_misses == before["analysis_misses"]


class TestParallelizeCache:
    def test_second_parallelize_is_a_cache_hit(self):
        config = AnalysisConfig.new_algorithm()
        cold = parallelize(SRC, config)
        before = perfstats.STATS.parallelize_hits
        warm = parallelize(SRC, config)
        assert perfstats.STATS.parallelize_hits == before + 1
        assert warm is cold

    def test_cached_equals_cold_decisions(self):
        config = AnalysisConfig.new_algorithm()
        warm = parallelize(SRC, config)
        _PARALLELIZE_CACHE.clear()
        _ANALYSIS_CACHE.clear()
        cold = parallelize(SRC, config)
        # loop ids come from a global counter; compare decisions positionally
        assert len(warm.decisions) == len(cold.decisions)
        for wd, cd in zip(warm.decisions.values(), cold.decisions.values()):
            assert (wd.index, wd.depth, wd.parallel, wd.reason, wd.pragma) == (
                cd.index,
                cd.depth,
                cd.parallel,
                cd.reason,
                cd.pragma,
            )
        assert warm.to_c() == cold.to_c()

    def test_repeated_pipeline_runs_analyze_once(self):
        """Acceptance: run the Table1+Fig17 driver twice, analysis runs once."""
        from repro.experiments.fig17 import format_fig17
        from repro.experiments.table1 import format_table1

        def run_driver():
            return format_table1() + "\n" + format_fig17()

        first = run_driver()  # warms the caches (possibly already warm)
        _PARALLELIZE_CACHE.clear()
        _ANALYSIS_CACHE.clear()
        perfstats.reset_counters()
        second = run_driver()
        misses_after_cold = perfstats.STATS.analysis_misses
        assert misses_after_cold > 0
        third = run_driver()
        # the second in-process run added zero analysis work
        assert perfstats.STATS.analysis_misses == misses_after_cold
        assert perfstats.STATS.parallelize_hits > 0
        assert first == second == third
