"""Systematic coverage of the paper's generalized loop forms.

Figure 2 (handled by the Base Algorithm):
  (a) SRA: a[i1] = p with p an SSR updated in an inner loop;
  (b) chain: a[f(i1)] = a[f(i1)-1] + k with f(i1) ∈ {i1, i1+1} (P1 ∈ {0,1}).

Figure 3 (requires the new algorithm):
  (a) intermittent: a[ind] = i1; ind = ind + 1 under a condition;
  (b) multi-dimensional: a[i1]…[in] = α·i1 + [rl:ru] with α+rl ≥ ru.
"""

import pytest

from repro.analysis import AnalysisConfig, MonoKind, analyze_program

BASE = AnalysisConfig.base_algorithm()
NEW = AnalysisConfig.new_algorithm()


class TestFigure2a:
    def src(self, inner_cond=True):
        body = "p = p + 1;" if not inner_cond else "if (cond[i2] > 0) { p = p + 1; }"
        return f"""
        p = 0;
        for (i1 = 0; i1 < n; i1++) {{
            a[i1] = p;
            for (i2 = 0; i2 < m; i2++) {{ {body} }}
        }}
        """

    def test_conditional_inner_increment(self):
        res = analyze_program(self.src(True), BASE)
        p = res.properties.property_of("a")
        assert p is not None and p.kind is MonoKind.MA

    def test_unconditional_inner_increment(self):
        res = analyze_program(self.src(False), BASE)
        p = res.properties.property_of("a")
        assert p is not None and p.kind.monotonic

    def test_store_after_update_still_monotonic(self):
        src = """
        p = 0;
        for (i1 = 0; i1 < n; i1++) {
            p = p + 2;
            a[i1] = p;
        }
        """
        res = analyze_program(src, BASE)
        p = res.properties.property_of("a")
        assert p is not None and p.kind is MonoKind.SMA

    def test_negative_inner_increment_rejected(self):
        src = self.src(True).replace("p = p + 1;", "p = p - 1;")
        res = analyze_program(src, NEW)
        assert res.properties.property_of("a") is None


class TestFigure2b:
    @pytest.mark.parametrize("p1", [0, 1])
    def test_chain_with_both_initial_bounds(self, p1):
        # f(i1) = i1+1 when P1 = 0; f(i1) = i1 when P1 = 1
        f = "s+1" if p1 == 0 else "s"
        src = f"""
        kk = 5;
        a[0] = 0;
        for (s = {p1}; s < n; s++) {{
            a[{f}] = a[{f}-1] + kk;
        }}
        """
        res = analyze_program(src, BASE)
        p = res.properties.property_of("a")
        assert p is not None and p.kind is MonoKind.SMA

    def test_chain_nonnegative_k_nonstrict(self):
        src = """
        kk = 0;
        for (s = 0; s < n; s++) {
            a[s+1] = a[s] + kk;
        }
        """
        res = analyze_program(src, BASE)
        p = res.properties.property_of("a")
        assert p is not None and p.kind is MonoKind.MA

    def test_chain_reading_wrong_neighbor_rejected(self):
        src = """
        kk = 5;
        for (s = 0; s < n; s++) {
            a[s+1] = a[s-1] + kk;
        }
        """
        res = analyze_program(src, NEW)
        assert res.properties.property_of("a") is None


class TestFigure3a:
    def test_canonical_intermittent(self):
        src = """
        ind = 0;
        for (i1 = 0; i1 < n; i1++) {
            if (c[i1] > 0) {
                a[ind] = i1;
                ind = ind + 1;
            }
        }
        """
        res = analyze_program(src, NEW)
        p = res.properties.property_of("a")
        assert p is not None and p.kind is MonoKind.SMA and p.intermittent

    def test_value_with_positive_coefficient(self):
        src = """
        ind = 0;
        for (i1 = 0; i1 < n; i1++) {
            if (c[i1] > 0) {
                a[ind] = 3*i1 + 7;
                ind = ind + 1;
            }
        }
        """
        res = analyze_program(src, NEW)
        p = res.properties.property_of("a")
        assert p is not None and p.kind is MonoKind.SMA

    def test_nested_condition_tags_match(self):
        """Both statements under the SAME nested conditions still qualify."""
        src = """
        ind = 0;
        for (i1 = 0; i1 < n; i1++) {
            if (c[i1] > 0) {
                if (d[i1] < 5) {
                    a[ind] = i1;
                    ind = ind + 1;
                }
            }
        }
        """
        res = analyze_program(src, NEW)
        p = res.properties.property_of("a")
        assert p is not None and p.intermittent

    def test_partially_nested_conditions_rejected(self):
        """Store under two conditions, increment under one: tags differ."""
        src = """
        ind = 0;
        for (i1 = 0; i1 < n; i1++) {
            if (c[i1] > 0) {
                if (d[i1] < 5) {
                    a[ind] = i1;
                }
                ind = ind + 1;
            }
        }
        """
        res = analyze_program(src, NEW)
        assert res.properties.property_of("a") is None

    def test_else_branch_fill(self):
        """A fill in the else branch carries the negated condition tag."""
        src = """
        ind = 0;
        for (i1 = 0; i1 < n; i1++) {
            if (c[i1] > 0) {
                q = q + 1;
            } else {
                a[ind] = i1;
                ind = ind + 1;
            }
        }
        """
        res = analyze_program(src, NEW)
        p = res.properties.property_of("a")
        assert p is not None and p.intermittent

    def test_monotonic_nonindex_value_variable(self):
        """inseq[ic] = j where j is a conditional SSR scalar (MA)."""
        src = """
        ind = 0;
        jv = 0;
        for (i1 = 0; i1 < n; i1++) {
            if (c[i1] > 0) {
                a[ind] = jv;
                ind = ind + 1;
            }
            if (d[i1] > 0) { jv = jv + 1; }
        }
        """
        res = analyze_program(src, NEW)
        p = res.properties.property_of("a")
        assert p is not None and p.kind is MonoKind.MA  # jv non-strict


class TestFigure3b:
    def test_boundary_inequality_exact(self):
        """α + rl == ru gives MA; α + rl > ru gives SMA (LEMMA 2)."""
        template = """
        for (i1 = 0; i1 < n; i1++) {{
            for (i2 = 0; i2 < {t}; i2++) {{
                ax[i1][i2] = {alpha}*i1 + i2;
            }}
        }}
        """
        # rem range [0:t-1]; strict iff alpha > t-1
        res = analyze_program(template.format(alpha=5, t=5), NEW)
        assert res.properties.any_property_of("ax").kind is MonoKind.SMA
        res = analyze_program(template.format(alpha=4, t=5), NEW)
        assert res.properties.any_property_of("ax").kind is MonoKind.MA
        res = analyze_program(template.format(alpha=3, t=5), NEW)
        assert res.properties.any_property_of("ax") is None

    def test_index_dimension_not_first(self):
        """LEMMA 2: 'The same holds if the dimension indexed by i is in any
        other than the first position.'"""
        src = """
        for (i1 = 0; i1 < n; i1++) {
            for (i2 = 0; i2 < 4; i2++) {
                ax[i2][i1] = 10*i1 + i2;
            }
        }
        """
        res = analyze_program(src, NEW)
        p = res.properties.any_property_of("ax")
        assert p is not None
        assert p.dim == 1
        assert p.kind is MonoKind.SMA

    def test_three_dimensions(self):
        src = """
        for (i1 = 0; i1 < n; i1++) {
            for (i2 = 0; i2 < 3; i2++) {
                for (i3 = 0; i3 < 3; i3++) {
                    ax[i1][i2][i3] = 9*i1 + 3*i2 + i3;
                }
            }
        }
        """
        res = analyze_program(src, NEW)
        p = res.properties.any_property_of("ax")
        assert p is not None and p.kind is MonoKind.SMA and p.dim == 0

    def test_negative_remainder_rejected(self):
        src = """
        for (i1 = 0; i1 < n; i1++) {
            for (i2 = 0; i2 < 4; i2++) {
                ax[i1][i2] = 10*i1 + i2 - 2;
            }
        }
        """
        res = analyze_program(src, NEW)
        assert res.properties.any_property_of("ax") is None
