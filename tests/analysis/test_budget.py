"""Resource budgets: checkpoint semantics and fail-soft degradation."""

import dataclasses
import time

import pytest

from repro.analysis import AnalysisConfig, analyze_program
from repro.budget import (
    AnalysisBudget,
    active_budget,
    charge_phase,
    charge_simplify,
    check_expr,
    scoped_budget,
)
from repro.diagnostics import BUDGET_EXCEEDED, BudgetExceeded
from repro.ir.symbols import Sym, add, mul
from repro.parallelizer import parallelize


def cfg_with(budget: AnalysisBudget) -> AnalysisConfig:
    return dataclasses.replace(AnalysisConfig.new_algorithm(), budget=budget)


# ---------------------------------------------------------------------------
# checkpoint unit semantics
# ---------------------------------------------------------------------------


def test_default_budget_is_unlimited():
    b = AnalysisBudget()
    assert b.is_unlimited
    assert b.describe() == "unlimited"
    assert AnalysisConfig.new_algorithm().budget.is_unlimited


def test_unlimited_scope_is_a_noop():
    with scoped_budget(AnalysisBudget.unlimited()):
        assert active_budget() is None
        charge_simplify()  # free: must not raise or count
    with scoped_budget(None):
        assert active_budget() is None


def test_simplify_step_cap_trips():
    with scoped_budget(AnalysisBudget(max_simplify_steps=2)):
        charge_simplify()
        charge_simplify()
        with pytest.raises(BudgetExceeded) as ei:
            charge_simplify()
        assert ei.value.limit == "max_simplify_steps"


def test_phase_iter_cap_trips():
    with scoped_budget(AnalysisBudget(max_phase_iters=1)):
        charge_phase()
        with pytest.raises(BudgetExceeded) as ei:
            charge_phase()
        assert ei.value.limit == "max_phase_iters"


def test_expr_node_cap_trips_and_stops_walking_early():
    e = Sym("bx0")
    for k in range(1, 12):
        e = add(mul(Sym(f"bx{k}"), Sym(f"by{k}")), e)
    with scoped_budget(AnalysisBudget(max_expr_nodes=5)):
        with pytest.raises(BudgetExceeded) as ei:
            check_expr(e)
        assert ei.value.limit == "max_expr_nodes"
    with scoped_budget(AnalysisBudget(max_expr_nodes=10_000)):
        check_expr(e)  # under the cap: fine


def test_deadline_trips_at_any_checkpoint():
    with scoped_budget(AnalysisBudget(deadline_ms=0.0)):
        time.sleep(0.002)
        with pytest.raises(BudgetExceeded) as ei:
            charge_phase()
        assert ei.value.limit == "deadline_ms"


def test_scopes_nest_and_restore():
    outer = AnalysisBudget(max_simplify_steps=100)
    inner = AnalysisBudget(max_simplify_steps=1)
    with scoped_budget(outer):
        charge_simplify()
        with scoped_budget(inner):
            assert active_budget() is inner
            charge_simplify()
            with pytest.raises(BudgetExceeded):
                charge_simplify()
        assert active_budget() is outer
        charge_simplify()  # outer counters resumed, far below its cap
    assert active_budget() is None


def test_budget_participates_in_config_fingerprint():
    base = AnalysisConfig.new_algorithm()
    tight = cfg_with(AnalysisBudget(max_simplify_steps=3))
    assert base.fingerprint() != tight.fingerprint()
    assert tight.fingerprint() == cfg_with(AnalysisBudget(max_simplify_steps=3)).fingerprint()


# ---------------------------------------------------------------------------
# fail-soft degradation through the full pipeline
# ---------------------------------------------------------------------------

# unique variable names throughout: the memoized simplifier only charges the
# budget on cache *misses*, so these programs must not share expressions
# with other tests in the same process

COUNTER_FILL = """
bg_k = 0;
for (bg_i = 0; bg_i < bg_n; bg_i++) {
  if (bg_x[bg_i] > 0) {
    bg_p[bg_k] = bg_i;
    bg_k = bg_k + 1;
  }
}
for (bg_j = 0; bg_j < bg_m; bg_j++) bg_y[bg_p[bg_j]] = bg_y[bg_p[bg_j]] + 1;
"""

TRIVIAL_THEN_FILL = """
for (bh_i = 0; bh_i < bh_n; bh_i++) bh_a[bh_i] = bh_i;
bh_k = 0;
for (bh_j = 0; bh_j < bh_n; bh_j++) {
  if (bh_x[bh_j] > 0) {
    bh_p[bh_k] = bh_j;
    bh_k = bh_k + 1;
  }
}
"""

BLOWUP = """
for (bz_i = 0; bz_i < bz_n; bz_i++) {
  bz_t = (bz_a1[bz_i] + bz_b1[bz_i] + bz_c1[bz_i]) * (bz_a2[bz_i] + bz_b2[bz_i] + bz_c2[bz_i]) * (bz_a3[bz_i] + bz_b3[bz_i] + bz_c3[bz_i]);
  bz_o[bz_i] = bz_t;
}
"""


def test_tight_simplify_budget_degrades_nest_without_raising():
    res = analyze_program(COUNTER_FILL, cfg_with(AnalysisBudget(max_simplify_steps=1)))
    faults = [d for d in res.diagnostics if d.kind == BUDGET_EXCEEDED]
    assert faults, "expected a budget-exceeded diagnostic"
    assert all(d.is_fault for d in faults)
    assert not res.properties.all_properties()


def test_budget_fault_serializes_the_nest():
    result = parallelize(COUNTER_FILL, cfg_with(AnalysisBudget(max_simplify_steps=1)))
    faults = [d for d in result.diagnostics if d.kind == BUDGET_EXCEEDED]
    assert faults
    for d in faults:
        assert d.nest_id is not None
        dec = result.decisions.get(d.nest_id)
        assert dec is not None and not dec.parallel
        assert "conservative serial" in dec.reason


def test_max_expr_nodes_acceptance():
    """A nest deliberately exceeding --max-expr-nodes yields a
    budget-exceeded diagnostic and a serial decision (ISSUE acceptance)."""
    result = parallelize(BLOWUP, cfg_with(AnalysisBudget(max_expr_nodes=6)))
    faults = [d for d in result.diagnostics if d.kind == BUDGET_EXCEEDED]
    assert faults and "max_expr_nodes" in faults[0].detail
    assert not result.parallel_loops
    # the same program analyzes cleanly (and parallel) without the cap
    free = parallelize(BLOWUP, AnalysisConfig.new_algorithm())
    assert not [d for d in free.diagnostics if d.is_fault]
    assert free.parallel_loops


def test_per_nest_isolation_other_nests_still_analyzed():
    """The budget is per nest: a trivial sibling nest survives the fill
    nest's degradation (the fill needs more simplifier work).

    The simplifier is memoized, so the exact uncached step count depends
    on process history; scan caps (with fresh names each time, to force
    misses) until one degrades the fill nest only.
    """
    for cap in (6, 9, 12, 16, 22, 30):
        src = TRIVIAL_THEN_FILL.replace("bh_", f"bh{cap}_")
        result = parallelize(src, cfg_with(AnalysisBudget(max_simplify_steps=cap)))
        failed = result.analysis.failed_nests
        trivial_id = result.analysis.nests[0].loop.loop_id
        if not failed:
            continue  # cap already generous enough for the whole program
        if trivial_id in failed:
            continue  # cap so tight even the trivial nest tripped
        # the fill nest degraded, the trivial nest did not: isolation holds
        dec = result.decisions.get(trivial_id)
        assert dec is not None and dec.parallel
        fill_id = result.analysis.nests[1].loop.loop_id
        assert fill_id in failed
        return
    pytest.fail("no cap separated the trivial nest from the fill nest")


def test_zero_deadline_degrades_everything_but_never_raises():
    res = analyze_program(COUNTER_FILL, cfg_with(AnalysisBudget(deadline_ms=0.0)))
    assert [d for d in res.diagnostics if d.kind == BUDGET_EXCEEDED]
    result = parallelize(COUNTER_FILL, cfg_with(AnalysisBudget(deadline_ms=0.0)))
    assert not result.parallel_loops
