"""Tests for loop discovery and eligibility (paper §2.2)."""

from repro.analysis.loopinfo import assigned_arrays, assigned_scalars, find_loop_nests
from repro.analysis.normalize import normalize_program
from repro.lang.cparser import parse_program


def nests(src):
    return find_loop_nests(normalize_program(parse_program(src)))


def test_finds_top_level_nests_in_order():
    ns = nests("for(i=0;i<n;i++){} for(j=0;j<m;j++){}")
    assert len(ns) == 2
    assert ns[0].index == "i" and ns[1].index == "j"


def test_nest_structure():
    ns = nests("for(i=0;i<n;i++){ for(j=0;j<m;j++){ for(k=0;k<p;k++){} } }")
    assert len(ns) == 1
    assert ns[0].depth() == 3
    assert ns[0].inner[0].index == "j"


def test_sibling_inner_loops():
    ns = nests("for(i=0;i<n;i++){ for(j=0;j<m;j++){} for(k=0;k<p;k++){} }")
    assert len(ns[0].inner) == 2


def test_break_makes_ineligible():
    ns = nests("for(i=0;i<n;i++){ if (a[i] > 0) break; }")
    assert not ns[0].eligible
    assert "break" in ns[0].reason


def test_side_effect_call_makes_ineligible():
    ns = nests("for(i=0;i<n;i++){ x = rand(); }")
    assert not ns[0].eligible
    assert "rand" in ns[0].reason


def test_math_calls_are_fine():
    ns = nests("for(i=0;i<n;i++){ a[i] = exp(b[i]) + sqrt(c[i]); }")
    assert ns[0].eligible


def test_while_inside_makes_ineligible():
    ns = nests("for(i=0;i<n;i++){ while (x < 5) x = x + 1; }")
    assert not ns[0].eligible


def test_index_assignment_makes_ineligible():
    ns = nests("for(i=0;i<n;i++){ i = i + 2; }")
    assert not ns[0].eligible


def test_non_canonical_header_ineligible():
    ns = nests("for(i=n;i>0;i=i-1){ a[i] = 0; }")
    assert not ns[0].eligible


def test_assigned_scalars_includes_inner_indices():
    ns = nests("for(i=0;i<n;i++){ s = 0; for(j=0;j<m;j++){ s = s + 1; } }")
    body = ns[0].loop.body
    got = assigned_scalars(body)
    assert "s" in got and "j" in got


def test_assigned_arrays():
    ns = nests("for(i=0;i<n;i++){ a[i] = b[i]; c[i][0] = 1; }")
    assert assigned_arrays(ns[0].loop.body) == {"a", "c"}


def test_loop_ids_unique():
    ns = nests("for(i=0;i<n;i++){ for(j=0;j<m;j++){} }")
    ids = [x.loop.loop_id for x in ns[0].walk()]
    assert len(ids) == len(set(ids))
