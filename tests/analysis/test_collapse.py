"""Collapsed-loop application tests (Λ-marker substitution)."""

from repro.analysis.collapse import CollapsedLoop, MarkerBounds, subst_range
from repro.ir.ranges import SymRange
from repro.ir.symbols import BOTTOM, BigLambda, IntLit, Sym, add, mul


def make_bounds(values):
    return MarkerBounds(lambda name: values.get(name))


def test_biglambda_substitutes_current_value():
    bounds = make_bounds({"p": SymRange.point(IntLit(7))})
    r = subst_range(SymRange(BigLambda("p"), add(BigLambda("p"), 3)), bounds)
    assert r == SymRange(7, 10)


def test_unresolved_biglambda_falls_back_to_symbol():
    bounds = make_bounds({})
    r = subst_range(SymRange.point(BigLambda("p")), bounds)
    assert r == SymRange.point(Sym("p"))


def test_outer_lvv_symbol_substitutes():
    # inner summary references Sym('ntemp'); the outer iteration knows it
    bounds = make_bounds({"ntemp": SymRange.point(mul(125, Sym("iel")))})
    r = subst_range(SymRange(Sym("ntemp"), add(Sym("ntemp"), 124)), bounds)
    assert r == SymRange(mul(125, Sym("iel")), add(mul(125, Sym("iel")), 124))


def test_range_valued_substitution_uses_outer_bounds():
    # current value of p is itself a range: lb of result takes p's lb
    bounds = make_bounds({"p": SymRange(0, Sym("n"))})
    r = subst_range(SymRange(BigLambda("p"), add(BigLambda("p"), 1)), bounds)
    assert r.lb == IntLit(0)
    assert r.ub == add(Sym("n"), 1)


def test_negative_coefficient_swaps_bounds():
    bounds = make_bounds({"p": SymRange(0, 10)})
    r = subst_range(SymRange(mul(-1, BigLambda("p")), mul(-1, BigLambda("p"))), bounds)
    assert r == SymRange(-10, 0)


def test_unknown_bounds_preserved():
    bounds = make_bounds({})
    r = subst_range(SymRange(BOTTOM, BOTTOM), bounds)
    assert r.is_unknown


def test_collapsed_loop_defaults():
    cl = CollapsedLoop(loop_id="L0", index="i", trip_count=None)
    assert cl.analyzed
    assert not cl.scalar_effects and not cl.array_effects
