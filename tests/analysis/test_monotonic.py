"""Unit tests for SSR / SRA / is_Mono_Array (paper §2.4, Algorithm 2)."""

from repro.analysis.irbridge import EMPTY_TAG
from repro.analysis.monotonic import (
    SSRInfo,
    is_loop_invariant,
    is_mono_array,
    is_ssr,
    match_ssr_expr,
    subscript_is_simple,
)
from repro.analysis.properties import MonoKind
from repro.analysis.svd import SVD, StoreRec, ValueSet, VItem
from repro.ir.rangedict import RangeDict
from repro.ir.ranges import SymRange
from repro.ir.symbols import ArrayRef, BOTTOM, IntLit, LambdaVal, Sym, add, mul

FACTS = RangeDict()
IDX = "i"


def vs(*items):
    return ValueSet(items)


def lam(name):
    return SymRange.point(LambdaVal(name))


def tag(variant=True, key=("k",)):
    return EMPTY_TAG.extend(key, True, variant)


class TestLoopInvariance:
    def test_symbols_invariant(self):
        assert is_loop_invariant(Sym("n"), IDX)

    def test_index_not_invariant(self):
        assert not is_loop_invariant(add(Sym("i"), 1), IDX)

    def test_lambda_not_invariant(self):
        assert not is_loop_invariant(LambdaVal("p"), IDX)


class TestIsSSR:
    def test_unconditional_positive_increment_is_strict(self):
        v = vs(VItem(SymRange.point(add(LambdaVal("p"), 1))))
        info = is_ssr("p", v, IDX, FACTS)
        assert info is not None
        assert info.kind is MonoKind.SMA
        assert not info.conditional

    def test_symbolic_pnn_increment(self):
        facts = RangeDict().set(Sym("k"), SymRange(1, BOTTOM))
        v = vs(VItem(SymRange.point(add(LambdaVal("p"), Sym("k")))))
        info = is_ssr("p", v, IDX, facts)
        assert info is not None and info.kind is MonoKind.SMA

    def test_unknown_sign_increment_rejected(self):
        v = vs(VItem(SymRange.point(add(LambdaVal("p"), Sym("k")))))
        assert is_ssr("p", v, IDX, FACTS) is None

    def test_negative_increment_rejected(self):
        v = vs(VItem(SymRange.point(add(LambdaVal("p"), -1))))
        assert is_ssr("p", v, IDX, FACTS) is None

    def test_conditional_increment_is_nonstrict(self):
        v = vs(VItem(lam("p")), VItem(SymRange.point(add(LambdaVal("p"), 1)), tag()))
        info = is_ssr("p", v, IDX, FACTS)
        assert info is not None
        assert info.kind is MonoKind.MA
        assert info.conditional

    def test_increment_by_index_rejected(self):
        v = vs(VItem(SymRange.point(add(LambdaVal("p"), Sym(IDX)))))
        assert is_ssr("p", v, IDX, FACTS) is None

    def test_range_increment(self):
        # collapsed inner loop effect: p = λ_p + [0:m]
        facts = RangeDict().set(Sym("m"), SymRange(0, BOTTOM))
        v = vs(VItem(SymRange(LambdaVal("p"), add(LambdaVal("p"), Sym("m")))))
        info = is_ssr("p", v, IDX, facts)
        assert info is not None and info.kind is MonoKind.MA

    def test_plain_assignment_rejected(self):
        v = vs(VItem(SymRange.point(IntLit(0))))
        assert is_ssr("p", v, IDX, FACTS) is None


class TestMatchSSRExpr:
    def test_loop_index(self):
        got = match_ssr_expr(SymRange.point(Sym(IDX)), IDX, {}, FACTS)
        assert got is not None and got.is_index and got.kind is MonoKind.SMA

    def test_index_with_constant(self):
        got = match_ssr_expr(SymRange.point(add(Sym(IDX), 7)), IDX, {}, FACTS)
        assert got is not None and got.rem == IntLit(7)

    def test_ssr_scalar(self):
        ssr = {"p": SSRInfo("p", MonoKind.MA, SymRange(0, 1), True)}
        got = match_ssr_expr(lam("p"), IDX, ssr, FACTS)
        assert got is not None and got.ssr_var == "p" and got.kind is MonoKind.MA

    def test_unknown_scalar_rejected(self):
        got = match_ssr_expr(lam("q"), IDX, {}, FACTS)
        assert got is None

    def test_negative_coefficient_rejected(self):
        got = match_ssr_expr(SymRange.point(mul(-1, Sym(IDX))), IDX, {}, FACTS)
        assert got is None

    def test_positive_coefficient_accepted(self):
        got = match_ssr_expr(SymRange.point(mul(3, Sym(IDX))), IDX, {}, FACTS)
        assert got is not None and got.coeff == IntLit(3)


class TestSubscriptIsSimple:
    def test_index(self):
        assert subscript_is_simple(SymRange.point(Sym(IDX)), IDX) == IntLit(0)

    def test_index_plus_const(self):
        assert subscript_is_simple(SymRange.point(add(Sym(IDX), 1)), IDX) == IntLit(1)

    def test_scaled_index_rejected(self):
        assert subscript_is_simple(SymRange.point(mul(2, Sym(IDX))), IDX) is None

    def test_range_rejected(self):
        assert subscript_is_simple(SymRange(0, 4), IDX) is None


def _counter_svd(cond_variant=True, same_tag=True, value=None):
    """Build the Phase-1 state of LEMMA 1's canonical loop."""
    t1 = tag(cond_variant, key=("c1",))
    t2 = t1 if same_tag else tag(cond_variant, key=("c2",))
    svd = SVD()
    svd.set_scalar(
        "ic", vs(VItem(lam("ic")), VItem(SymRange.point(add(LambdaVal("ic"), 1)), t1))
    )
    value = value if value is not None else SymRange.point(Sym(IDX))
    rec = StoreRec((lam("ic"),), ("ic",), (VItem(value, t2),))
    svd.add_store("inseq", rec)
    return svd, svd.arrays["inseq"]


class TestIsMonoArrayIntermittent:
    def test_lemma1_detected_strict(self):
        svd, recs = _counter_svd()
        res = is_mono_array("inseq", recs, svd, IDX, {}, FACTS)
        assert res is not None
        assert res.intermittent
        assert res.kind is MonoKind.SMA
        assert res.counter_var == "ic"

    def test_lemma1_requires_equal_tags(self):
        svd, recs = _counter_svd(same_tag=False)
        assert is_mono_array("inseq", recs, svd, IDX, {}, FACTS) is None

    def test_lemma1_gated_by_config(self):
        svd, recs = _counter_svd()
        assert (
            is_mono_array("inseq", recs, svd, IDX, {}, FACTS, allow_intermittent=False)
            is None
        )

    def test_loop_invariant_condition_rejected(self):
        # Algorithm 2 line 15: tags must be equal AND loop variant
        svd, recs = _counter_svd(cond_variant=False)
        assert is_mono_array("inseq", recs, svd, IDX, {}, FACTS) is None

    def test_unconditional_counter_fill_continuous(self):
        # inseq[ic] = i; ic = ic + 1 with NO condition: the contiguous fill
        # Cetus' induction-variable substitution exposes (base capability)
        svd = SVD()
        svd.set_scalar(
            "ic",
            vs(VItem(SymRange.point(add(LambdaVal("ic"), 1)))),
        )
        rec = StoreRec((lam("ic"),), ("ic",), (VItem(SymRange.point(Sym(IDX))),))
        svd.add_store("inseq", rec)
        res = is_mono_array(
            "inseq", svd.arrays["inseq"], svd, IDX, {}, FACTS, allow_intermittent=False
        )
        assert res is not None and not res.intermittent and res.kind is MonoKind.SMA

    def test_non_ssr_value_rejected(self):
        svd, recs = _counter_svd(value=SymRange.point(ArrayRef("xs", [Sym(IDX)])))
        assert is_mono_array("inseq", recs, svd, IDX, {}, FACTS) is None


class TestIsMonoArraySRA:
    def test_sra_with_index_value(self):
        svd = SVD()
        svd.add_store("a", StoreRec((SymRange.point(Sym(IDX)),), (None,), (VItem(SymRange.point(Sym(IDX))),)))
        res = is_mono_array("a", svd.arrays["a"], svd, IDX, {}, FACTS)
        assert res is not None and res.kind is MonoKind.SMA

    def test_sra_with_ssr_scalar(self):
        ssr = {"p": SSRInfo("p", MonoKind.MA, SymRange(0, 1), True)}
        svd = SVD()
        svd.add_store("a", StoreRec((SymRange.point(Sym(IDX)),), (None,), (VItem(lam("p")),)))
        res = is_mono_array("a", svd.arrays["a"], svd, IDX, ssr, FACTS)
        assert res is not None and res.kind is MonoKind.MA

    def test_multiple_store_sites_conservative(self):
        svd = SVD()
        svd.add_store("a", StoreRec((SymRange.point(Sym(IDX)),), (None,), (VItem(SymRange.point(Sym(IDX))),)))
        svd.add_store("a", StoreRec((SymRange.point(add(Sym(IDX), 1)),), (None,), (VItem(SymRange.point(Sym(IDX))),)))
        assert is_mono_array("a", svd.arrays["a"], svd, IDX, {}, FACTS) is None


class TestIsMonoArrayChain:
    def test_chain_positive_k(self):
        facts = RangeDict().set(Sym("w"), SymRange(1, BOTTOM))
        svd = SVD()
        val = SymRange.point(add(ArrayRef("a", [Sym(IDX)]), Sym("w")))
        svd.add_store("a", StoreRec((SymRange.point(add(Sym(IDX), 1)),), (None,), (VItem(val),)))
        res = is_mono_array("a", svd.arrays["a"], svd, IDX, {}, facts)
        assert res is not None and res.chain and res.kind is MonoKind.SMA

    def test_chain_unknown_k_rejected(self):
        svd = SVD()
        val = SymRange.point(add(ArrayRef("a", [Sym(IDX)]), Sym("w")))
        svd.add_store("a", StoreRec((SymRange.point(add(Sym(IDX), 1)),), (None,), (VItem(val),)))
        assert is_mono_array("a", svd.arrays["a"], svd, IDX, {}, FACTS) is None


class TestIsMonoArrayMultiDim:
    def _recs(self, value_ranges, dim_subs=None):
        svd = SVD()
        for vr in value_ranges:
            subs = dim_subs or (SymRange.point(Sym(IDX)), SymRange(0, 4))
            covers = tuple(not s.is_point for s in subs)
            svd.add_store("ax", StoreRec(subs, (None,) * len(subs), (VItem(vr),), covers))
        return svd, svd.arrays["ax"]

    def test_lemma2_strict(self):
        # value = 125*i + [0:124]; α + rl = 125 > 124 = ru
        vr = SymRange(mul(125, Sym(IDX)), add(mul(125, Sym(IDX)), 124))
        svd, recs = self._recs([vr])
        res = is_mono_array("ax", recs, svd, IDX, {}, FACTS)
        assert res is not None and res.kind is MonoKind.SMA and res.dim == 0

    def test_lemma2_nonstrict_boundary(self):
        # α + rl == ru exactly: monotonic but not strict
        vr = SymRange(mul(125, Sym(IDX)), add(mul(125, Sym(IDX)), 125))
        svd, recs = self._recs([vr])
        res = is_mono_array("ax", recs, svd, IDX, {}, FACTS)
        assert res is not None and res.kind is MonoKind.MA

    def test_lemma2_violated(self):
        # ranges overlap: α + rl < ru
        vr = SymRange(mul(100, Sym(IDX)), add(mul(100, Sym(IDX)), 150))
        svd, recs = self._recs([vr])
        assert is_mono_array("ax", recs, svd, IDX, {}, FACTS) is None

    def test_lemma2_requires_pnn_remainder(self):
        vr = SymRange(add(mul(125, Sym(IDX)), -5), add(mul(125, Sym(IDX)), 50))
        svd, recs = self._recs([vr])
        assert is_mono_array("ax", recs, svd, IDX, {}, FACTS) is None

    def test_lemma2_union_across_stores(self):
        # two store sites whose union still satisfies the inequality
        v1 = SymRange(mul(125, Sym(IDX)), add(mul(125, Sym(IDX)), 24))
        v2 = SymRange(add(mul(125, Sym(IDX)), 100), add(mul(125, Sym(IDX)), 124))
        svd, recs = self._recs([v1, v2])
        res = is_mono_array("ax", recs, svd, IDX, {}, FACTS)
        assert res is not None and res.kind is MonoKind.SMA

    def test_lemma2_gated_by_config(self):
        vr = SymRange(mul(125, Sym(IDX)), add(mul(125, Sym(IDX)), 124))
        svd, recs = self._recs([vr])
        assert is_mono_array("ax", recs, svd, IDX, {}, FACTS, allow_multidim=False) is None

    def test_index_in_two_dims_rejected(self):
        subs = (SymRange.point(Sym(IDX)), SymRange.point(Sym(IDX)))
        vr = SymRange(mul(125, Sym(IDX)), add(mul(125, Sym(IDX)), 124))
        svd, recs = self._recs([vr], dim_subs=subs)
        assert is_mono_array("ax", recs, svd, IDX, {}, FACTS) is None
