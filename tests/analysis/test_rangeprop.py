"""Symbolic range propagation tests."""

from repro.analysis.cfg import NodeKind
from repro.analysis.normalize import normalize_program
from repro.analysis.rangeprop import propagate_ranges, refine_by_condition
from repro.ir.rangedict import RangeDict
from repro.ir.ranges import Sign, SymRange, sign_of
from repro.ir.symbols import IntLit, Sym, sub
from repro.lang.cparser import parse_expr, parse_program


def body_of(src):
    prog = normalize_program(parse_program(f"for (q_ = 0; q_ < 1; q_++) {{ {src} }}"))
    return prog.stmts[0].body


def test_constant_assignment():
    res = propagate_ranges(body_of("x = 5;"))
    assert res.at_exit.range_of(Sym("x")) == SymRange.point(5)


def test_arith_propagation():
    res = propagate_ranges(body_of("x = 2; y = x * 3 + 1;"))
    assert res.at_exit.range_of(Sym("y")) == SymRange.point(7)


def test_reassignment_kills_old_range():
    res = propagate_ranges(body_of("x = 1; x = unknown_call_free;"))
    # second assignment: symbolic but point
    r = res.at_exit.range_of(Sym("x"))
    assert r == SymRange.point(Sym("unknown_call_free"))


def test_merge_unions_branches():
    res = propagate_ranges(body_of("if (c > 0) x = 1; else x = 10;"))
    assert res.at_exit.range_of(Sym("x")) == SymRange(1, 10)


def test_branch_without_else_unions_with_entry():
    res = propagate_ranges(body_of("x = 0; if (c > 0) x = 5;"))
    assert res.at_exit.range_of(Sym("x")) == SymRange(0, 5)


def test_condition_refines_inside_then():
    """Inside `if (adiag > 0)` the range of adiag has lb 1."""
    body = body_of("adiag = d; if (adiag > 0) { y = adiag; }")
    res = propagate_ranges(body)
    # find the STMT node for y = adiag (guards non-empty)
    for node in res.cfg.topological():
        if node.kind is NodeKind.STMT and node.guards:
            rd = res.at_node[node.nid]
            y = rd.range_of(Sym("y"))
            if y is not None:
                assert sign_of(y.lb) is Sign.POSITIVE
                return
    raise AssertionError("guarded statement not found")


class TestRefineByCondition:
    def setup_method(self):
        self.rd = RangeDict().set(Sym("x"), SymRange(0, 100))

    def refine(self, cond, pol=True):
        return refine_by_condition(self.rd, parse_expr(cond), pol)

    def test_less_than(self):
        r = self.refine("x < 10").range_of(Sym("x"))
        assert r == SymRange(0, 9)

    def test_less_than_negated(self):
        r = self.refine("x < 10", pol=False).range_of(Sym("x"))
        assert r == SymRange(10, 100)

    def test_greater_equal(self):
        r = self.refine("x >= 50").range_of(Sym("x"))
        assert r == SymRange(50, 100)

    def test_equality(self):
        r = self.refine("x == 7").range_of(Sym("x"))
        assert r == SymRange(7, 7)

    def test_flipped_operands(self):
        r = self.refine("10 > x").range_of(Sym("x"))
        assert r == SymRange(0, 9)

    def test_conjunction(self):
        r = self.refine("x > 5 && x < 20").range_of(Sym("x"))
        assert r == SymRange(6, 19)

    def test_negation_operator(self):
        r = self.refine("!(x < 10)").range_of(Sym("x"))
        assert r == SymRange(10, 100)

    def test_symbolic_bound(self):
        r = self.refine("x < n").range_of(Sym("x"))
        assert r.ub == sub(Sym("n"), IntLit(1))

    def test_not_equal_is_noop(self):
        r = self.refine("x != 5").range_of(Sym("x"))
        assert r == SymRange(0, 100)

    def test_opaque_condition_is_noop(self):
        r = self.refine("f[x] < 3").range_of(Sym("x"))
        assert r == SymRange(0, 100)


def test_inner_loop_kills_assigned_scalars():
    body = body_of("x = 1; for (j = 0; j < m; j++) { x = x + 1; }")
    res = propagate_ranges(body)
    assert res.at_exit.range_of(Sym("x")) is None
