"""Induction-variable substitution tests (semantics-preserving rewrites)."""

import numpy as np

from repro.analysis.ivsub import find_induction_vars, substitute_in_program
from repro.analysis.loopinfo import find_loop_nests
from repro.analysis.normalize import match_header, normalize_program
from repro.lang.astnodes import For
from repro.lang.cparser import parse_program
from repro.lang.printer import to_c
from repro.runtime.interp import run_program


def prep(src):
    return normalize_program(parse_program(src))


def test_finds_unconditional_iv():
    prog = prep("for (i = 0; i < n; i++) { a[k] = i; k = k + 3; }")
    loop = prog.stmts[0]
    ivs = find_induction_vars(loop, match_header(loop))
    assert [iv.name for iv in ivs] == ["k"]
    assert to_c(ivs[0].increment) == "3"


def test_conditional_update_not_iv():
    prog = prep("for (i = 0; i < n; i++) { if (c[i]) k = k + 1; }")
    loop = prog.stmts[0]
    assert find_induction_vars(loop, match_header(loop)) == []


def test_two_updates_not_iv():
    prog = prep("for (i = 0; i < n; i++) { k = k + 1; a[k] = i; k = k + 2; }")
    loop = prog.stmts[0]
    assert find_induction_vars(loop, match_header(loop)) == []


def test_variant_increment_not_iv():
    prog = prep("for (i = 0; i < n; i++) { k = k + c[i]; }")
    loop = prog.stmts[0]
    assert find_induction_vars(loop, match_header(loop)) == []


def test_substitution_preserves_semantics():
    src = """
    k = 2;
    for (i = 0; i < 7; i++) {
        a[k] = i;
        k = k + 3;
    }
    """
    prog1 = prep(src)
    prog2 = prep(src)
    substitute_in_program(prog2)

    def env():
        return {"a": np.zeros(40, dtype=np.int64), "k": 0}

    out1 = run_program(prog1, env())
    out2 = run_program(prog2, env())
    np.testing.assert_array_equal(out1["a"], out2["a"])
    assert out1["k"] == out2["k"] == 2 + 21


def test_substitution_makes_subscript_affine():
    """After substitution, classical dependence testing sees an affine
    subscript and parallelizes the fill."""
    src = """
    k = 0;
    for (i = 0; i < n; i++) {
        a[k] = b[i];
        k = k + 1;
    }
    """
    prog = prep(src)
    substitute_in_program(prog)
    loop = next(s for s in prog.stmts if isinstance(s, For))
    text = to_c(loop)
    assert "a[k_0 + 1 * i]" in text or "a[k_0 + i]" in text

    from repro.dependence.accesses import collect_accesses
    from repro.dependence.classic import classic_independent

    nest = find_loop_nests(prog)[0]
    ok, _ = classic_independent(collect_accesses(nest.loop.body, nest.header.index))
    assert ok


def test_uses_after_update_read_next_value():
    src = """
    k = 0;
    for (i = 0; i < 5; i++) {
        k = k + 2;
        a[i] = k;
    }
    """
    prog1 = prep(src)
    prog2 = prep(src)
    substitute_in_program(prog2)

    def env():
        return {"a": np.zeros(5, dtype=np.int64), "k": 0}

    out1 = run_program(prog1, env())
    out2 = run_program(prog2, env())
    np.testing.assert_array_equal(out1["a"], out2["a"])


def test_loop_index_never_substituted():
    prog = prep("for (i = 0; i < n; i++) { a[i] = 0; }")
    ivs = substitute_in_program(prog)
    assert not ivs
