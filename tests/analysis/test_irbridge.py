"""Tests for AST→IR evaluation and condition tags."""

from repro.analysis.irbridge import EMPTY_TAG, cond_is_loop_variant, cond_key, eval_expr
from repro.ir.ranges import SymRange
from repro.ir.symbols import ArrayRef, Sym, add, mul
from repro.lang.cparser import parse_expr


def ev(src):
    return eval_expr(parse_expr(src))


class TestEvalExpr:
    def test_literal(self):
        assert ev("42") == SymRange.point(42)

    def test_identifier(self):
        assert ev("n") == SymRange.point(Sym("n"))

    def test_arith(self):
        assert ev("2*i + 3") == SymRange.point(add(mul(2, Sym("i")), 3))

    def test_point_times_point(self):
        assert ev("125*iel") == SymRange.point(mul(125, Sym("iel")))

    def test_array_read(self):
        assert ev("A_i[i+1]") == SymRange.point(ArrayRef("A_i", [add(Sym("i"), 1)]))

    def test_float_unknown(self):
        assert ev("0.5 * x").is_unknown

    def test_call_unknown(self):
        assert ev("exp(x)").is_unknown

    def test_relational_unknown(self):
        assert ev("a < b").is_unknown

    def test_unary_minus(self):
        assert ev("-x") == SymRange.point(mul(-1, Sym("x")))

    def test_division_points(self):
        r = ev("10 / 2")
        assert r == SymRange.point(5)

    def test_ternary_unions(self):
        r = ev("c ? 1 : 5")
        assert r == SymRange(1, 5)


class TestCondKey:
    def test_equal_conditions_equal_keys(self):
        a = cond_key(parse_expr("(xdos[j] - t) < width"))
        b = cond_key(parse_expr("(xdos[j] - t) < width"))
        assert a == b

    def test_different_conditions_differ(self):
        a = cond_key(parse_expr("x < 1"))
        b = cond_key(parse_expr("x < 2"))
        assert a != b

    def test_keys_hashable(self):
        k = cond_key(parse_expr("a[i] != r && b > 0"))
        assert hash(k) is not None

    def test_operand_values_canonicalized(self):
        # i+1 and 1+i are the same value
        a = cond_key(parse_expr("x[i+1] > 0"))
        b = cond_key(parse_expr("x[1+i] > 0"))
        assert a == b


class TestLoopVariance:
    def test_index_reference_variant(self):
        e = parse_expr("xs[j] > 0")
        assert cond_is_loop_variant(e, "j", frozenset())

    def test_lvv_reference_variant(self):
        e = parse_expr("r != c")
        assert cond_is_loop_variant(e, "i", frozenset({"r"}))

    def test_invariant_condition(self):
        e = parse_expr("flag > 0")
        assert not cond_is_loop_variant(e, "i", frozenset())

    def test_array_at_variant_subscript(self):
        e = parse_expr("col_val[i] != r")
        assert cond_is_loop_variant(e, "i", frozenset())


class TestTag:
    def test_empty_tag(self):
        assert EMPTY_TAG.empty
        assert not EMPTY_TAG.loop_variant

    def test_extend_and_equality(self):
        t1 = EMPTY_TAG.extend(("k1",), True, True)
        t2 = EMPTY_TAG.extend(("k1",), True, True)
        assert t1 == t2 and hash(t1) == hash(t2)

    def test_polarity_matters(self):
        t1 = EMPTY_TAG.extend(("k1",), True, True)
        t2 = EMPTY_TAG.extend(("k1",), False, True)
        assert t1 != t2

    def test_loop_variant_any_conjunct(self):
        t = EMPTY_TAG.extend(("a",), True, False).extend(("b",), True, True)
        assert t.loop_variant

    def test_nesting_order_matters(self):
        t1 = EMPTY_TAG.extend(("a",), True, True).extend(("b",), True, True)
        t2 = EMPTY_TAG.extend(("b",), True, True).extend(("a",), True, True)
        assert t1 != t2
