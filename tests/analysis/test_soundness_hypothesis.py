"""Property-based soundness harness for the whole analysis.

Strategy: generate random fill-loop programs from a grammar spanning the
paper's pattern space (conditional/unconditional counter fills, SRA,
chains, multi-dimensional closed forms — plus *corrupted* variants with
negative increments, skipped counters, non-monotone values).  For every
program:

1. run the analyzer;
2. execute the program concretely through the interpreter;
3. for every property the analyzer CLAIMED, check it numerically —
   monotone (strictly, if SMA) over the claimed region, and for
   multi-dimensional claims, Definition 1's range ordering.

The analyzer may be as conservative as it likes (claiming nothing is always
sound); it must never claim a property the execution violates.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis import AnalysisConfig, MonoKind, analyze_program
from repro.lang.cparser import parse_program
from repro.runtime.interp import run_program

N = 14


@st.composite
def counter_fill_programs(draw):
    """inseq[m] = <val>; m = m + <inc>  — possibly guarded, possibly broken."""
    guard = draw(st.booleans())
    inc = draw(st.sampled_from([1, 1, 1, 2, -1]))
    cond_const = draw(st.integers(0, 9))
    val = draw(st.sampled_from(["i", "2*i + 1", "3*i", "xs[i]", "i - 5", "p"]))
    inc_first = draw(st.booleans())
    with_ssr = draw(st.booleans())
    pc = draw(st.integers(-1, 3))

    body = []
    if with_ssr:
        body.append(f"p = p + {pc};" if pc >= 0 else f"p = p - {-pc};")
    fill = [f"a[m] = {val};", f"m = m + {inc};"]
    if inc_first:
        fill.reverse()
    fill_text = " ".join(fill)
    if guard:
        body.append(f"if (xs[i] > {cond_const}) {{ {fill_text} }}")
    else:
        body.append(fill_text)
    src = "m = 0;\np = 0;\nfor (i = 0; i < n; i++) {\n  " + "\n  ".join(body) + "\n}\n"
    xs = draw(st.lists(st.integers(0, 9), min_size=N, max_size=N))
    return src, xs


@st.composite
def multidim_fill_programs(draw):
    """ax[i][j] = alpha*i + beta*j + c — LEMMA 2 space, overlaps included."""
    alpha = draw(st.integers(-2, 12))
    beta = draw(st.integers(-2, 4))
    c = draw(st.integers(-3, 3))
    jtrip = draw(st.integers(1, 4))
    src = (
        f"for (i = 0; i < n; i++) {{\n"
        f"  for (j = 0; j < {jtrip}; j++) {{\n"
        f"    ax[i][j] = {alpha}*i + {beta}*j + {c};\n"
        f"  }}\n"
        f"}}\n"
    )
    return src, jtrip


def _run(src, xs=None):
    env = {
        "n": N,
        "m": 0,
        "p": 0,
        "a": np.full(4 * N + 8, -(10**6), dtype=np.int64),
        "ax": np.full((N, 8), -(10**6), dtype=np.int64),
        "xs": np.array(xs if xs is not None else [0] * N, dtype=np.int64),
    }
    return run_program(parse_program(src), env)


def _eval_bound(expr, out):
    env = {"n": N}
    for name, v in out.items():
        if isinstance(v, (int, np.integer)):
            env[name] = int(v)
    # counter_max symbols bind to the final counter value
    for name in list(env):
        env[f"{name}_max"] = env[name]
    try:
        return expr.evaluate(env)
    except (KeyError, ValueError):
        return None


@given(counter_fill_programs())
@settings(max_examples=300, deadline=None)
def test_counter_fill_claims_are_sound(case):
    src, xs = case
    res = analyze_program(src, AnalysisConfig.new_algorithm())
    props = [p for p in res.properties.all_properties() if p.array == "a"]
    if not props:
        return  # conservative: always fine
    out = _run(src, xs)
    a = out["a"]
    for prop in props:
        assert prop.kind.monotonic
        lo = _eval_bound(prop.region.lb, out) if prop.region is not None else 0
        if prop.counter_var is not None:
            hi = int(out[prop.counter_var]) - 1  # written slots
        else:
            hi = _eval_bound(prop.region.ub, out)
        if lo is None or hi is None or hi < lo:
            continue
        written = a[lo : hi + 1]
        # every claimed slot must actually have been written
        assert np.all(written != -(10**6)), (src, lo, hi, written)
        diffs = np.diff(written)
        if prop.kind is MonoKind.SMA:
            assert np.all(diffs > 0), (src, written)
        else:
            assert np.all(diffs >= 0), (src, written)


@given(multidim_fill_programs())
@settings(max_examples=200, deadline=None)
def test_multidim_claims_are_sound(case):
    src, jtrip = case
    res = analyze_program(src, AnalysisConfig.new_algorithm())
    props = [p for p in res.properties.all_properties() if p.array == "ax"]
    if not props:
        return
    out = _run(src)
    ax = out["ax"][:, :jtrip]
    for prop in props:
        assert prop.dim == 0
        # Definition 1: ranges along dim 0 are ordered
        mins = ax.min(axis=1)
        maxs = ax.max(axis=1)
        if prop.kind is MonoKind.SMA:
            assert np.all(maxs[:-1] < mins[1:]), (src, ax)
        else:
            assert np.all(maxs[:-1] <= mins[1:]), (src, ax)


@given(counter_fill_programs())
@settings(max_examples=200, deadline=None)
def test_base_algorithm_is_a_subset(case):
    """Anything the base algorithm proves, the new algorithm proves too
    (capability monotonicity)."""
    src, _ = case
    base = analyze_program(src, AnalysisConfig.base_algorithm())
    new = analyze_program(src, AnalysisConfig.new_algorithm())
    for p in base.properties.all_properties():
        q = new.properties.property_of(p.array, p.dim)
        assert q is not None
        assert q.kind.value >= p.kind.value


def test_known_negative_is_never_claimed():
    """A decrementing counter fill must never earn a property (regression
    anchor for the generator's corrupted variants)."""
    src = """
    m = 0;
    for (i = 0; i < n; i++) {
        if (xs[i] > 3) { a[m] = i; m = m - 1; }
    }
    """
    res = analyze_program(src, AnalysisConfig.new_algorithm())
    assert res.properties.property_of("a") is None
