"""Tests for the Symbolic Value Dictionary containers."""

from repro.analysis.irbridge import EMPTY_TAG
from repro.analysis.svd import SVD, StoreRec, ValueSet, VItem
from repro.ir.ranges import SymRange
from repro.ir.symbols import LambdaVal, Sym, add


def tag():
    return EMPTY_TAG.extend(("c",), True, True)


def test_valueset_dedupes():
    item = VItem(SymRange.point(1))
    vs = ValueSet([item, item])
    assert len(vs) == 1


def test_valueset_lam():
    vs = ValueSet.lam("m")
    assert vs.single_value() == SymRange.point(LambdaVal("m"))


def test_valueset_union():
    a = ValueSet.single(SymRange.point(1))
    b = ValueSet.single(SymRange.point(2))
    u = a.union(b)
    assert len(u) == 2


def test_tagged_partition():
    vs = ValueSet([VItem(SymRange.point(1)), VItem(SymRange.point(2), tag())])
    assert len(vs.tagged_items) == 1
    assert len(vs.untagged_items) == 1


def test_flat_range():
    vs = ValueSet([VItem(SymRange.point(1)), VItem(SymRange.point(5))])
    assert vs.flat_range() == SymRange(1, 5)


def test_single_value_none_when_multiple():
    vs = ValueSet([VItem(SymRange.point(1)), VItem(SymRange.point(2))])
    assert vs.single_value() is None


def test_storerec_defaults_covers():
    rec = StoreRec((SymRange.point(Sym("i")),), (None,), (VItem(SymRange.point(0)),))
    assert rec.covers == (False,)


def test_storerec_value_range():
    rec = StoreRec(
        (SymRange.point(Sym("i")),),
        (None,),
        (VItem(SymRange.point(0)), VItem(SymRange.point(9))),
    )
    assert rec.value_range() == SymRange(0, 9)


def test_svd_merge_scalars():
    a = SVD()
    a.set_scalar("m", ValueSet.lam("m"))
    b = SVD()
    b.set_scalar("m", ValueSet.single(SymRange.point(add(LambdaVal("m"), 1)), tag()))
    m = a.merge(b).get_scalar("m")
    assert len(m) == 2


def test_svd_merge_keeps_one_sided_entries():
    a = SVD()
    a.set_scalar("x", ValueSet.single(SymRange.point(1)))
    merged = a.merge(SVD())
    assert merged.get_scalar("x") is not None


def test_svd_merge_dedupes_stores():
    rec = StoreRec((SymRange.point(Sym("i")),), (None,), (VItem(SymRange.point(0)),))
    a = SVD()
    a.add_store("arr", rec)
    b = SVD()
    b.add_store("arr", rec)
    merged = a.merge(b)
    assert len(merged.arrays["arr"]) == 1


def test_svd_copy_is_independent():
    a = SVD()
    a.set_scalar("x", ValueSet.single(SymRange.point(1)))
    c = a.copy()
    c.set_scalar("x", ValueSet.single(SymRange.point(2)))
    assert a.get_scalar("x").single_value() == SymRange.point(1)
