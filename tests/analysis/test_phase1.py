"""Tests for Phase-1 symbolic execution (paper §2.3, Figures 4/5)."""

from repro.analysis.loopinfo import find_loop_nests
from repro.analysis.normalize import normalize_program
from repro.analysis.phase1 import run_phase1
from repro.ir.ranges import SymRange
from repro.ir.symbols import ArrayRef, IntLit, LambdaVal, Sym, add, sub
from repro.lang.cparser import parse_program


def phase1(src, nest_index=0):
    prog = normalize_program(parse_program(src))
    nests = find_loop_nests(prog)
    return run_phase1(nests[nest_index], {})


def test_paper_figure5_svd():
    """The SVD of the final node must match the paper's Figure 5:
    {ind[m] = [λ_ind, ⟨j⟩], m = [λ_m, ⟨1+λ_m⟩]} (modulo the λ_ind item,
    which we represent implicitly)."""
    res = phase1(
        """
        m = 0;
        for (j = 0; j < npts; j++) {
            if ((xdos[j] - t) < width)
                ind[m++] = j;
        }
        """
    )
    svd = res.svd
    # m's value set: untagged λ_m and tagged λ_m + 1
    m = svd.get_scalar("m")
    values = {(it.value, it.tagged) for it in m.items}
    lam_m = SymRange.point(LambdaVal("m"))
    lam_m1 = SymRange.point(add(LambdaVal("m"), 1))
    assert (lam_m, False) in values
    assert (lam_m1, True) in values
    # ind store: subscript λ_m (counter m), value ⟨j⟩
    recs = svd.arrays["ind"]
    assert len(recs) == 1
    rec = recs[0]
    assert rec.sub_vars == ("m",)
    assert rec.subs[0] == lam_m
    assert rec.values[0].value == SymRange.point(Sym("j"))
    assert rec.values[0].tag.loop_variant


def test_lvv_initialization_to_lambda():
    # p is assigned in the body, so reads before the assignment see λ_p
    res = phase1("p = 0; for (i = 0; i < n; i++) { a[i] = p; p = p + 1; }")
    rec = res.svd.arrays["a"][0]
    assert rec.values[0].value == SymRange.point(LambdaVal("p"))


def test_non_lvv_scalar_stays_symbolic():
    # p is never assigned in the loop: it is a loop-invariant symbol
    res = phase1("p = 0; for (i = 0; i < n; i++) { a[i] = p; }")
    rec = res.svd.arrays["a"][0]
    assert rec.values[0].value == SymRange.point(Sym("p"))


def test_unconditional_increment_untagged():
    res = phase1("for (i = 0; i < n; i++) { p = p + 2; }")
    p = res.svd.get_scalar("p")
    assert len(p.items) == 1
    assert not p.items[0].tagged
    assert p.items[0].value == SymRange.point(add(LambdaVal("p"), 2))


def test_sequential_updates_compose():
    res = phase1("for (i = 0; i < n; i++) { p = p + 1; p = p + 2; }")
    p = res.svd.get_scalar("p")
    assert p.single_value() == SymRange.point(add(LambdaVal("p"), 3))


def test_if_else_merge_unions_both_branches():
    res = phase1(
        "for (i = 0; i < n; i++) { if (c[i] > 0) p = p + 1; else p = p + 5; }"
    )
    p = res.svd.get_scalar("p")
    assert len(p.items) == 2
    assert all(it.tagged for it in p.items)


def test_loop_invariant_read_stays_symbolic():
    res = phase1("for (i = 0; i < n; i++) { a[i] = q * 2; }")
    rec = res.svd.arrays["a"][0]
    assert rec.values[0].value == SymRange.point(Sym("q") * 2)


def test_array_read_becomes_arrayref():
    res = phase1("for (i = 0; i < n; i++) { x = A_i[i+1]; }")
    x = res.svd.get_scalar("x")
    assert x.single_value() == SymRange.point(ArrayRef("A_i", [add(Sym("i"), 1)]))


def test_amg_adiag_expression():
    """Paper §3.1: adiag = A_i[i+1] - A_i[i]."""
    res = phase1(
        """
        irownnz = 0;
        for (i = 0; i < num_rows; i++){
            adiag = A_i[i+1] - A_i[i];
            if (adiag > 0)
                A_rownnz[irownnz++] = i;
        }
        """
    )
    adiag = res.svd.get_scalar("adiag")
    expected = sub(ArrayRef("A_i", [add(Sym("i"), 1)]), ArrayRef("A_i", [Sym("i")]))
    from repro.ir.simplify import simplify

    assert adiag.single_value() == SymRange.point(simplify(expected))
    # the store is tagged with a loop-variant condition
    rec = res.svd.arrays["A_rownnz"][0]
    assert rec.values[0].tag.loop_variant


def test_same_condition_produces_equal_tags():
    """LEMMA 1 requires the counter increment and the store to carry EQUAL
    tags."""
    res = phase1(
        """
        m = 0;
        for (j = 0; j < n; j++) {
            if (xs[j] > 0) {
                ind[m] = j;
                m = m + 1;
            }
        }
        """
    )
    svd = res.svd
    rec = svd.arrays["ind"][0]
    m_tagged = [it for it in svd.get_scalar("m").items if it.tagged]
    assert len(m_tagged) == 1
    assert rec.values[0].tag == m_tagged[0].tag


def test_different_conditions_produce_different_tags():
    res = phase1(
        """
        for (j = 0; j < n; j++) {
            if (xs[j] > 0) { a[j] = 1; }
            if (ys[j] > 0) { b[j] = 1; }
        }
        """
    )
    ta = res.svd.arrays["a"][0].values[0].tag
    tb = res.svd.arrays["b"][0].values[0].tag
    assert ta != tb


def test_loop_invariant_condition_not_variant():
    res = phase1("for (j = 0; j < n; j++) { if (flag > 0) p = p + 1; }")
    p = res.svd.get_scalar("p")
    tagged = [it for it in p.items if it.tagged]
    assert tagged and not tagged[0].tag.loop_variant


def test_unanalyzed_inner_loop_kills_effects():
    """An ineligible inner loop conservatively clobbers what it assigns."""
    res = phase1(
        """
        for (i = 0; i < n; i++) {
            x = 5;
            for (j = 0; j < m; j = j + 2) { x = x + 1; }
        }
        """
    )
    x = res.svd.get_scalar("x")
    assert x.flat_range().is_unknown


def test_multidim_store_records_all_subscripts():
    res = phase1("for (i = 0; i < 5; i++) { idel[iel][0][i] = i * 5; }")
    rec = res.svd.arrays["idel"][0]
    assert len(rec.subs) == 3
    assert rec.subs[0] == SymRange.point(Sym("iel"))
    assert rec.subs[1] == SymRange.point(IntLit(0))
    assert rec.subs[2] == SymRange.point(Sym("i"))
