"""Tests for Phase-2 aggregation (paper §2.5, Algorithm 1)."""

from repro.analysis.config import AnalysisConfig
from repro.analysis.loopinfo import find_loop_nests
from repro.analysis.normalize import normalize_program
from repro.analysis.phase1 import run_phase1
from repro.analysis.phase2 import run_phase2
from repro.analysis.properties import MonoKind
from repro.ir.rangedict import RangeDict
from repro.ir.ranges import SymRange
from repro.ir.symbols import BigLambda, IntLit, Sym, add, mul, sub
from repro.lang.cparser import parse_program

CFG = AnalysisConfig.new_algorithm()


def phase2(src, config=CFG, facts=None):
    prog = normalize_program(parse_program(src))
    nests = find_loop_nests(prog)
    results = {}

    def rec(nest):
        inner = {}
        for x in nest.inner:
            cl = rec(x)
            inner[cl.loop_id] = cl
        p1 = run_phase1(nest, inner)
        p2 = run_phase2(nest, p1, config, facts or RangeDict())
        results[nest.loop.loop_id] = p2
        return p2.collapsed

    top = rec(nests[0])
    return top, results


class TestScalarAggregation:
    def test_ssr_unconditional(self):
        """sc = sc + k aggregates to Λ_sc + N*k (paper eq. 2)."""
        cl, _ = phase2("for (i = 0; i < n; i++) { p = p + 2; }")
        eff = cl.scalar_effects["p"]
        expected = SymRange(
            add(BigLambda("p"), mul(2, Sym("n"))), add(BigLambda("p"), mul(2, Sym("n")))
        )
        assert eff == expected

    def test_ssr_conditional_range(self):
        """Conditional increments give [Λ : Λ + N] (paper §3.1 irownnz)."""
        cl, _ = phase2("for (i = 0; i < n; i++) { if (c[i] > 0) p = p + 1; }")
        eff = cl.scalar_effects["p"]
        assert eff == SymRange(BigLambda("p"), add(BigLambda("p"), Sym("n")))

    def test_index_final_value(self):
        cl, _ = phase2("for (i = 0; i < n; i++) { a[i] = 0; }")
        assert cl.scalar_effects["i"] == SymRange.point(Sym("n"))

    def test_plain_assignment_ranges_over_index(self):
        """ntemp = 125*iel aggregates to [0 : 125*(LELT-1)] (paper §3.3)."""
        cl, _ = phase2("for (iel = 0; iel < LELT; iel++) { ntemp = 125*iel; }")
        eff = cl.scalar_effects["ntemp"]
        assert eff == SymRange(IntLit(0), mul(125, sub(Sym("LELT"), 1)))

    def test_unrecognized_recurrence_unknown(self):
        cl, _ = phase2("for (i = 0; i < n; i++) { p = p * 2; }")
        assert "p" not in cl.scalar_effects or cl.scalar_effects["p"].is_unknown

    def test_trip_count(self):
        _, results = phase2("for (i = 3; i < n; i++) { a[i] = 0; }")
        p2 = next(iter(results.values()))
        assert p2.trip_count == sub(Sym("n"), 3)
        assert p2.index_range == SymRange(3, sub(Sym("n"), 1))


class TestArrayProperties:
    def test_intermittent_property_emitted(self):
        cl, _ = phase2(
            """
            for (i = 0; i < n; i++) {
                if (xs[i] > 0) { inseq[ic] = i; ic = ic + 1; }
            }
            """
        )
        assert len(cl.properties) == 1
        p = cl.properties[0]
        assert p.array == "inseq"
        assert p.kind is MonoKind.SMA
        assert p.intermittent
        assert p.counter_var == "ic"
        assert p.counter_max == Sym("ic_max")
        assert p.value_range == SymRange(0, sub(Sym("n"), 1))

    def test_base_config_rejects_intermittent(self):
        cl, _ = phase2(
            """
            for (i = 0; i < n; i++) {
                if (xs[i] > 0) { inseq[ic] = i; ic = ic + 1; }
            }
            """,
            config=AnalysisConfig.base_algorithm(),
        )
        assert not cl.properties

    def test_sra_property(self):
        cl, _ = phase2(
            """
            for (i1 = 0; i1 < n; i1++) {
                a[i1] = p;
                for (i2 = 0; i2 < m; i2++) { if (c[i2] > 0) p = p + 1; }
            }
            """
        )
        props = {p.array: p for p in cl.properties}
        assert "a" in props
        assert props["a"].kind is MonoKind.MA
        assert props["a"].region == SymRange(0, sub(Sym("n"), 1))

    def test_multidim_property_with_collapse(self):
        """The UA pattern at reduced size: per-level collapse then LEMMA 2."""
        cl, results = phase2(
            """
            for (iel = 0; iel < LELT; iel++) {
                ntemp = 10*iel;
                for (j = 0; j < 2; j++) {
                    for (i = 0; i < 5; i++) {
                        idel[iel][j][i] = ntemp + i + j*5;
                    }
                }
            }
            """
        )
        props = {p.array: p for p in cl.properties}
        assert "idel" in props
        p = props["idel"]
        assert p.kind is MonoKind.SMA
        assert p.dim == 0
        assert p.value_range == SymRange(0, add(mul(10, sub(Sym("LELT"), 1)), 9))

    def test_multidim_overlap_no_property(self):
        cl, _ = phase2(
            """
            for (iel = 0; iel < LELT; iel++) {
                for (i = 0; i < 5; i++) {
                    idel[iel][i] = 3*iel + i;
                }
            }
            """
        )
        # value = 3*iel + [0:4]: α + rl = 3 < 4 = ru — ranges overlap
        assert not [p for p in cl.properties if p.array == "idel"]

    def test_multidim_boundary_nonstrict(self):
        cl, _ = phase2(
            """
            for (iel = 0; iel < LELT; iel++) {
                for (i = 0; i < 5; i++) {
                    idel[iel][i] = 4*iel + i;
                }
            }
            """
        )
        props = {p.array: p for p in cl.properties}
        assert props["idel"].kind is MonoKind.MA


class TestCollapsedArrayEffects:
    def test_store_region_covers_index_dim(self):
        cl, _ = phase2("for (i = 0; i < n; i++) { a[i] = i; }")
        recs = cl.array_effects["a"]
        assert len(recs) == 1
        assert recs[0].covers == (True,)
        assert recs[0].subs[0] == SymRange(0, sub(Sym("n"), 1))

    def test_value_substituted_over_index(self):
        cl, _ = phase2("for (i = 0; i < n; i++) { a[i] = 2*i + 1; }")
        rec = cl.array_effects["a"][0]
        assert rec.values[0].value == SymRange(1, sub(mul(2, Sym("n")), 1))

    def test_assigned_sets_tracked(self):
        cl, _ = phase2("for (i = 0; i < n; i++) { a[i] = 0; q = i; }")
        assert "a" in cl.assigned_arrays
        assert "q" in cl.assigned_scalars
        assert "i" in cl.assigned_scalars
