"""Tests for the loop-body CFG (paper §2.3 / Figure 5)."""

from repro.analysis.cfg import NodeKind, build_cfg
from repro.analysis.normalize import normalize_program
from repro.lang.cparser import parse_program


def cfg_of(body_src):
    prog = normalize_program(parse_program(f"for (i = 0; i < n; i++) {{ {body_src} }}"))
    return build_cfg(prog.stmts[0].body)


def test_straight_line_chain():
    g = cfg_of("a = 1; b = 2;")
    kinds = [n.kind for n in g.topological()]
    assert kinds[0] is NodeKind.ENTRY
    assert kinds[-1] is NodeKind.EXIT
    assert kinds.count(NodeKind.STMT) == 2


def test_if_creates_branch_and_merge():
    g = cfg_of("if (a > 0) x = 1;")
    kinds = [n.kind for n in g.topological()]
    assert NodeKind.BRANCH in kinds
    assert NodeKind.MERGE in kinds


def test_branch_guard_recorded_on_then_statements():
    g = cfg_of("if (a > 0) x = 1;")
    stmt_nodes = [n for n in g.topological() if n.kind is NodeKind.STMT]
    assert len(stmt_nodes) == 1
    (guard_branch, polarity) = stmt_nodes[0].guards[0]
    assert guard_branch.kind is NodeKind.BRANCH
    assert polarity is True


def test_else_guard_polarity():
    g = cfg_of("if (a > 0) x = 1; else x = 2;")
    stmt_nodes = [n for n in g.topological() if n.kind is NodeKind.STMT]
    polarities = sorted(n.guards[0][1] for n in stmt_nodes)
    assert polarities == [False, True]


def test_nested_if_accumulates_guards():
    g = cfg_of("if (a > 0) { if (b > 0) x = 1; }")
    stmt_nodes = [n for n in g.topological() if n.kind is NodeKind.STMT]
    assert len(stmt_nodes[0].guards) == 2


def test_inner_loop_collapses_to_single_node():
    g = cfg_of("for (j = 0; j < m; j++) { s = s + 1; }")
    kinds = [n.kind for n in g.topological()]
    assert NodeKind.LOOP in kinds
    # the inner body statement is NOT a node of this CFG
    assert kinds.count(NodeKind.STMT) == 0


def test_merge_has_two_predecessors():
    g = cfg_of("if (a > 0) x = 1;")
    merge = next(n for n in g.topological() if n.kind is NodeKind.MERGE)
    assert len(merge.preds) == 2


def test_topological_order_respects_edges():
    g = cfg_of("a = 1; if (a > 0) { b = 2; } c = 3;")
    order = {n.nid: k for k, n in enumerate(g.topological())}
    for n in g.topological():
        for s in n.succs:
            assert order[n.nid] < order[s.nid]


def test_dag_is_acyclic():
    g = cfg_of("if (a>0) { if (b>0) x=1; else x=2; } y = x;")
    seen = set()
    for n in g.topological():
        for p in n.preds:
            assert p.nid in seen or p.nid < n.nid
        seen.add(n.nid)
