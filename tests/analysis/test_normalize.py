"""Tests for Cetus-style normalization (paper Figure 4b)."""

from repro.lang.cparser import parse_program
from repro.lang.printer import to_c
from repro.analysis.normalize import match_header, normalize_program


def norm(src: str) -> str:
    return to_c(normalize_program(parse_program(src)))


def test_paper_figure4_normalization():
    """The paper's Fig 4(a) -> Fig 4(b) transformation."""
    out = norm(
        """
        m = 0;
        for (j = 0; j < npts; j++) {
            if ((xdos[j] - t) < width)
                ind[m++] = j;
        }
        """
    )
    # _temp_0 = m; m = m + 1; ind[_temp_0] = j;  in that order
    a = out.index("_temp_0 = m;")
    b = out.index("m = m + 1;")
    c = out.index("ind[_temp_0] = j;")
    assert a < b < c


def test_statement_incdec_needs_no_temp():
    out = norm("m++;")
    assert "_temp" not in out
    assert "m = m + 1;" in out


def test_prefix_incdec_in_subscript():
    out = norm("a[++m] = 0;")
    assert "m = m + 1;" in out
    assert "a[m] = 0;" in out


def test_decrement():
    out = norm("a[m--] = 0;")
    assert "m = m + -1;" in out or "m = m - 1;" in out


def test_compound_assignment_lowered():
    out = norm("x += y * 2;")
    assert "x = x + y * 2;" in out


def test_compound_assignment_array_element():
    out = norm("a[i] *= 2;")
    assert "a[i] = a[i] * 2;" in out


def test_for_step_increment_lowered():
    out = norm("for (i = 0; i < n; i++) { }")
    assert "i = i + 1" in out


def test_prefix_step_lowered():
    out = norm("for (i = 0; i < n; ++i) { }")
    assert "i = i + 1" in out


def test_temps_are_fresh():
    out = norm("a[m++] = b[k++];")
    assert "_temp_0" in out and "_temp_1" in out


def test_normalization_preserves_semantics():
    """Interpret original and normalized programs: identical final state."""
    import numpy as np

    from repro.runtime.interp import run_program

    src = """
    m = 0;
    for (j = 0; j < 10; j++) {
        if (xs[j] > 4)
            ind[m++] = j;
    }
    """
    prog = parse_program(src)
    env = lambda: {
        "xs": np.arange(10),
        "ind": np.zeros(10, dtype=np.int64),
        "m": 0,
    }
    out1 = run_program(prog, env())
    out2 = run_program(normalize_program(prog), env())
    assert out1["m"] == out2["m"]
    assert np.array_equal(out1["ind"], out2["ind"])


class TestMatchHeader:
    def test_canonical(self):
        loop = normalize_program(parse_program("for (i = 0; i < n; i++) { }")).stmts[0]
        h = match_header(loop)
        assert h is not None
        assert h.index == "i" and not h.inclusive

    def test_inclusive(self):
        loop = normalize_program(parse_program("for (j = 0; j <= i; j++) { }")).stmts[0]
        h = match_header(loop)
        assert h is not None and h.inclusive

    def test_decl_init(self):
        loop = normalize_program(parse_program("for (int i = 0; i < n; i++) { }")).stmts[0]
        assert match_header(loop) is not None

    def test_symbolic_lower_bound(self):
        loop = normalize_program(
            parse_program("for (j = col_ptr[r]; j < col_ptr[r+1]; j++) { }")
        ).stmts[0]
        h = match_header(loop)
        assert h is not None

    def test_non_unit_stride_rejected(self):
        loop = parse_program("for (i = 0; i < n; i = i + 2) { }").stmts[0]
        assert match_header(loop) is None

    def test_downward_loop_rejected(self):
        loop = parse_program("for (i = n; i > 0; i = i - 1) { }").stmts[0]
        assert match_header(loop) is None

    def test_wrong_cond_var_rejected(self):
        loop = parse_program("for (i = 0; j < n; i = i + 1) { }").stmts[0]
        assert match_header(loop) is None
