"""AnalysisConfig tests."""

import dataclasses

import pytest

from repro.analysis.config import AnalysisConfig


def test_pipeline_names():
    assert AnalysisConfig.classical().name == "Cetus"
    assert AnalysisConfig.base_algorithm().name == "Cetus+BaseAlgo"
    assert AnalysisConfig.new_algorithm().name == "Cetus+NewAlgo"


def test_custom_mix_named():
    cfg = dataclasses.replace(AnalysisConfig.new_algorithm(), multidim=False)
    assert cfg.name == "Cetus+custom"


def test_classical_disables_everything():
    cfg = AnalysisConfig.classical()
    assert not cfg.array_analysis
    assert not cfg.intermittent
    assert not cfg.multidim


def test_config_is_frozen():
    cfg = AnalysisConfig.new_algorithm()
    with pytest.raises(dataclasses.FrozenInstanceError):
        cfg.intermittent = False
