"""Program-level analyzer tests: the paper's three worked examples plus
negative cases the analysis must reject."""


from repro.analysis import AnalysisConfig, MonoKind, analyze_program
from repro.ir.ranges import SymRange
from repro.ir.symbols import Sym, mul, sub

NEW = AnalysisConfig.new_algorithm()
BASE = AnalysisConfig.base_algorithm()

AMG_FILL = """
irownnz = 0;
for (i = 0; i < num_rows; i++){
    adiag = A_i[i+1] - A_i[i];
    if (adiag > 0)
        A_rownnz[irownnz++] = i;
}
"""

SDDMM_FILL = """
holder = 1; col_ptr[0] = 0; r = col_val[0];
for (i = 0; i < nonzeros; i++){
    if (col_val[i] != r){
        col_ptr[holder++] = i;
        r = col_val[i];
    }
}
"""

UA_FILL = """
for(iel = 0; iel < LELT; iel++) {
    ntemp = 125*iel;
    for(j = 0; j < 5; j++) {
        for(i = 0; i < 5; i++) {
            idel[iel][0][j][i] = ntemp + i*5 + j*25 + 4;
            idel[iel][1][j][i] = ntemp + i*5 + j*25;
            idel[iel][2][j][i] = ntemp + i + j*25 + 20;
            idel[iel][3][j][i] = ntemp + i + j*25;
            idel[iel][4][j][i] = ntemp + i + j*5 + 100;
            idel[iel][5][j][i] = ntemp + i + j*5;
        }
    }
}
"""


class TestPaperExample1AMG:
    def test_property(self):
        res = analyze_program(AMG_FILL, NEW)
        p = res.properties.property_of("A_rownnz")
        assert p is not None
        assert p.kind is MonoKind.SMA
        assert p.intermittent
        # region [0 : irownnz_max], values [0 : num_rows-1] (paper §3.1)
        assert p.region == SymRange(0, Sym("irownnz_max"))
        assert p.value_range == SymRange(0, sub(Sym("num_rows"), 1))

    def test_counter_state_after_loop(self):
        res = analyze_program(AMG_FILL, NEW)
        assert res.state.scalars["irownnz"] == SymRange(0, Sym("num_rows"))

    def test_counter_max_fact(self):
        res = analyze_program(AMG_FILL, NEW)
        assert res.facts.range_of(Sym("irownnz_max")) == SymRange(0, Sym("num_rows"))

    def test_base_algorithm_fails(self):
        res = analyze_program(AMG_FILL, BASE)
        assert res.properties.property_of("A_rownnz") is None

    def test_classical_config_finds_nothing(self):
        res = analyze_program(AMG_FILL, AnalysisConfig.classical())
        assert len(res.properties) == 0


class TestPaperExample2SDDMM:
    def test_property(self):
        res = analyze_program(SDDMM_FILL, NEW)
        p = res.properties.property_of("col_ptr")
        assert p is not None
        assert p.kind.monotonic
        assert p.intermittent
        # prefix-extended to [0 : holder_max] thanks to col_ptr[0] = 0
        assert p.region == SymRange(0, Sym("holder_max"))
        assert p.value_range == SymRange(0, sub(Sym("nonzeros"), 1))

    def test_without_prefix_assignment_region_starts_at_1(self):
        src = SDDMM_FILL.replace("col_ptr[0] = 0; ", "")
        res = analyze_program(src, NEW)
        p = res.properties.property_of("col_ptr")
        assert p is not None
        assert str(p.region.lb) == "1"


class TestPaperExample3UA:
    def test_property(self):
        res = analyze_program(UA_FILL, NEW)
        p = res.properties.any_property_of("idel")
        assert p is not None
        assert p.kind is MonoKind.SMA
        assert p.dim == 0
        assert p.region == SymRange(0, sub(Sym("LELT"), 1))
        # values [0 : 125*LELT - 1] == [0 : 125*(LELT-1)] + [0:124]
        assert p.value_range == SymRange(0, sub(mul(125, Sym("LELT")), 1))

    def test_multidim_gated_off(self):
        res = analyze_program(UA_FILL, BASE)
        assert res.properties.any_property_of("idel") is None


class TestChainRecurrence:
    SRC = """
    nscol = 48;
    xsup[0] = 0;
    for (s = 0; s < nsuper; s++){
        xsup[s+1] = xsup[s] + nscol;
    }
    """

    def test_base_algorithm_proves_chain(self):
        res = analyze_program(self.SRC, BASE)
        p = res.properties.property_of("xsup")
        assert p is not None and p.kind is MonoKind.SMA
        assert p.region == SymRange(0, Sym("nsuper"))

    def test_chain_with_unknown_step_rejected(self):
        src = self.SRC.replace("nscol = 48;", "")
        res = analyze_program(src, NEW)
        assert res.properties.property_of("xsup") is None

    def test_chain_with_negative_step_rejected(self):
        src = self.SRC.replace("nscol = 48;", "nscol = -1;")
        res = analyze_program(src, NEW)
        assert res.properties.property_of("xsup") is None


class TestNegativeCases:
    def test_decrementing_counter_rejected(self):
        res = analyze_program(
            """
            for (i = 0; i < n; i++){
                if (xs[i] > 0) { a[m] = i; m = m - 1; }
            }
            """,
            NEW,
        )
        assert res.properties.property_of("a") is None

    def test_non_monotonic_value_rejected(self):
        res = analyze_program(
            """
            for (i = 0; i < n; i++){
                if (xs[i] > 0) { a[m] = xs[i]; m = m + 1; }
            }
            """,
            NEW,
        )
        assert res.properties.property_of("a") is None

    def test_different_guards_rejected(self):
        res = analyze_program(
            """
            for (i = 0; i < n; i++){
                if (xs[i] > 0) { a[m] = i; }
                if (ys[i] > 0) { m = m + 1; }
            }
            """,
            NEW,
        )
        assert res.properties.property_of("a") is None

    def test_counter_incremented_by_two_rejected(self):
        res = analyze_program(
            """
            for (i = 0; i < n; i++){
                if (xs[i] > 0) { a[m] = i; m = m + 2; }
            }
            """,
            NEW,
        )
        assert res.properties.property_of("a") is None

    def test_input_dependent_subscript_rejected(self):
        """The Incomplete-Cholesky situation: no fill loop in the program."""
        res = analyze_program("for (i = 0; i < n; i++){ val[ja[i]] = 0; }", NEW)
        assert res.properties.property_of("val") is None
        assert res.properties.property_of("ja") is None

    def test_overwrite_kills_property(self):
        src = (
            AMG_FILL
            + """
        for (i = 0; i < num_rows; i++){
            A_rownnz[perm[i]] = i;
        }
        """
        )
        res = analyze_program(src, NEW)
        assert res.properties.property_of("A_rownnz") is None

    def test_refill_reestablishes_property(self):
        res = analyze_program(AMG_FILL + AMG_FILL, NEW)
        assert res.properties.property_of("A_rownnz") is not None


class TestProgramState:
    def test_straightline_scalar_tracking(self):
        res = analyze_program("x = 3; y = x + 2;", NEW)
        assert res.state.scalars["y"] == SymRange.point(5)

    def test_element_tracking(self):
        res = analyze_program("a[0] = 7;", NEW)
        from repro.ir.symbols import IntLit

        assert res.state.get_element("a", (IntLit(0),)) == SymRange.point(7)

    def test_loop_updates_state(self):
        res = analyze_program("p = 0; for (i = 0; i < 10; i++) { p = p + 1; }", NEW)
        assert res.state.scalars["p"] == SymRange.point(10)
