"""Tests for scalar privatization and reduction recognition."""

from repro.analysis.loopinfo import find_loop_nests
from repro.analysis.normalize import normalize_program
from repro.dependence.privatize import ScalarClass, classify_scalars
from repro.lang.cparser import parse_program


def classify(src):
    prog = normalize_program(parse_program(src))
    nest = find_loop_nests(prog)[0]
    return classify_scalars(nest.loop.body, nest.header.index)


def test_write_first_is_private():
    rep = classify("for (i=0;i<n;i++){ t = a[i]; b[i] = t * 2; }")
    assert rep.classes["t"] is ScalarClass.PRIVATE


def test_read_first_is_serial():
    rep = classify("for (i=0;i<n;i++){ b[i] = t; t = a[i]; }")
    assert rep.classes["t"] is ScalarClass.SERIAL


def test_sum_reduction():
    rep = classify("for (i=0;i<n;i++){ s = s + a[i]; }")
    assert rep.classes["s"] is ScalarClass.REDUCTION_ADD
    assert ("+", "s") in rep.reductions


def test_compound_add_reduction():
    rep = classify("for (i=0;i<n;i++){ s += a[i]; }")
    assert rep.classes["s"] is ScalarClass.REDUCTION_ADD


def test_product_reduction():
    rep = classify("for (i=0;i<n;i++){ s = s * a[i]; }")
    assert rep.classes["s"] is ScalarClass.REDUCTION_MUL


def test_mixed_operators_not_reduction():
    rep = classify("for (i=0;i<n;i++){ s = s + a[i]; s = s * 2; }")
    assert rep.classes["s"] is ScalarClass.SERIAL


def test_reduction_variable_read_elsewhere_not_reduction():
    rep = classify("for (i=0;i<n;i++){ s = s + a[i]; b[i] = s; }")
    assert rep.classes["s"] is ScalarClass.SERIAL


def test_self_referential_operand_not_reduction():
    rep = classify("for (i=0;i<n;i++){ s = s + s; }")
    assert rep.classes["s"] is ScalarClass.SERIAL


def test_inner_loop_index_private():
    rep = classify("for (i=0;i<n;i++){ for (j=0;j<m;j++){ a[i][j] = 0; } }")
    assert rep.classes["j"] is ScalarClass.PRIVATE


def test_recurrence_is_serial():
    rep = classify("for (i=0;i<n;i++){ t = t / 2; }")
    assert rep.classes["t"] is ScalarClass.SERIAL


def test_amg_kernel_scalars():
    """Paper Figure 8: m, tempx private; jj private (inner index)."""
    rep = classify(
        """
        for (i = 0; i < num_rownnz; i++){
            m = A_rownnz[i];
            tempx = y_data[m];
            for (jj = A_i[m]; jj < A_i[m+1]; jj++)
                tempx += A_data[jj] * x_data[A_j[jj]];
            y_data[m] = tempx;
        }
        """
    )
    assert rep.classes["m"] is ScalarClass.PRIVATE
    assert rep.classes["tempx"] is ScalarClass.PRIVATE
    assert rep.classes["jj"] is ScalarClass.PRIVATE
    assert not rep.serial_scalars


def test_private_list_sorted():
    rep = classify("for (i=0;i<n;i++){ z = 1; a = 2; q[i] = z + a; }")
    assert rep.private == sorted(rep.private)
