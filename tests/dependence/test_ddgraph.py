"""Dependence-graph tests."""

from repro.analysis import AnalysisConfig, analyze_program
from repro.analysis.irbridge import eval_expr
from repro.dependence.accesses import collect_accesses, collect_inner_loops
from repro.dependence.ddgraph import build_dependence_graph
from repro.ir.simplify import simplify
from repro.ir.symbols import IntLit, sub


def graph_for(src, nest_index=0, config=None):
    res = analyze_program(src, config or AnalysisConfig.new_algorithm())
    nest = res.nests[nest_index]
    idx = nest.header.index
    accesses = collect_accesses(nest.loop.body, idx)
    inner = collect_inner_loops(nest.loop.body)
    lo = eval_expr(nest.header.lb).lb
    hi = simplify(sub(eval_expr(nest.header.ub_expr).lb, IntLit(1)))
    return build_dependence_graph(accesses, idx, (lo, hi), res.properties, inner)


def test_clean_loop_has_no_edges():
    g = graph_for("for (i = 0; i < n; i++) { a[i] = b[i]; }")
    assert g.parallel
    assert g.summary() == "no loop-carried dependences"


def test_recurrence_has_flow_edge():
    g = graph_for("for (i = 1; i < n; i++) { a[i] = a[i-1]; }")
    assert not g.parallel
    assert any(e.kind in ("flow", "anti") for e in g.edges)
    assert g.arrays_blocking() == ["a"]


def test_output_dependence_on_indirect_write():
    g = graph_for("for (i = 0; i < n; i++) { y[ind[i]] = i; }")
    assert not g.parallel
    assert all(e.kind == "output" for e in g.edges)


def test_property_removes_edges():
    src = """
    m = 0;
    for (i = 0; i < n; i++){
        if (c[i] > 0) { b[m] = i; m = m + 1; }
    }
    for (i = 0; i < nw; i++){
        y[b[i]] = i;
    }
    """
    with_prop = graph_for(src, nest_index=1)
    assert with_prop.parallel
    without = graph_for(src, nest_index=1, config=AnalysisConfig.classical())
    assert not without.parallel


def test_edges_for_array():
    g = graph_for("for (i = 0; i < n; i++) { a[0] = i; b[i] = i; }")
    assert g.edges_for_array("a")
    assert not g.edges_for_array("b")
