"""Tests for access collection and copy propagation."""

from repro.analysis.loopinfo import find_loop_nests
from repro.analysis.normalize import normalize_program
from repro.dependence.accesses import build_copy_env, collect_accesses, collect_inner_loops
from repro.ir.symbols import IntLit
from repro.lang.cparser import parse_program
from repro.lang.printer import to_c


def setup(src):
    prog = normalize_program(parse_program(src))
    nest = find_loop_nests(prog)[0]
    return nest.loop.body, nest.header.index


def test_collects_reads_and_writes():
    body, idx = setup("for (i=0;i<n;i++){ a[i] = b[i] + c[i+1]; }")
    acc = collect_accesses(body, idx)
    names = {(a.array, a.is_write) for a in acc}
    assert ("a", True) in names
    assert ("b", False) in names
    assert ("c", False) in names


def test_compound_assignment_counts_read():
    body, idx = setup("for (i=0;i<n;i++){ a[i] += 1; }")
    acc = collect_accesses(body, idx)
    kinds = sorted((a.array, a.is_write) for a in acc)
    assert ("a", False) in kinds and ("a", True) in kinds


def test_affine_decomposition():
    body, idx = setup("for (i=0;i<n;i++){ a[2*i+3] = 0; }")
    acc = collect_accesses(body, idx)
    sub = acc[0].subs[0]
    assert sub.affine is not None
    coeff, off = sub.affine
    assert coeff == IntLit(2) and off == IntLit(3)


def test_variant_offset_not_affine():
    body, idx = setup("for (i=0;i<n;i++){ for (j=0;j<m;j++){ a[j] = 0; } }")
    acc = [a for a in collect_accesses(body, idx) if a.array == "a"]
    assert acc[0].subs[0].affine is None
    assert acc[0].subs[0].inner_index == "j"


def test_copy_env_single_definition():
    body, idx = setup("for (i=0;i<n;i++){ m = b[i]; y[m] = 1; }")
    env = build_copy_env(body, idx)
    assert "m" in env
    assert to_c(env["m"]) == "b[i]"


def test_copy_env_excludes_multiple_definitions():
    body, idx = setup("for (i=0;i<n;i++){ m = b[i]; m = m + 1; y[m] = 1; }")
    env = build_copy_env(body, idx)
    assert "m" not in env


def test_copy_env_excludes_guarded_defs():
    body, idx = setup("for (i=0;i<n;i++){ if (c[i]) m = b[i]; y[m] = 1; }")
    env = build_copy_env(body, idx)
    assert "m" not in env


def test_indirection_detected_through_copy():
    body, idx = setup("for (i=0;i<n;i++){ m = b[i]; y[m] = 1; }")
    acc = [a for a in collect_accesses(body, idx) if a.array == "y"]
    ind = acc[0].subs[0].indirection
    assert ind is not None and ind[0] == "b"


def test_guarded_flag():
    body, idx = setup("for (i=0;i<n;i++){ if (c[i] > 0) a[i] = 1; }")
    acc = [a for a in collect_accesses(body, idx) if a.array == "a"]
    assert acc[0].guarded


def test_collect_inner_loops():
    body, idx = setup(
        "for (r=0;r<n;r++){ for (k=s[r];k<s[r+1];k++){ p[k]=0; } }"
    )
    inner = collect_inner_loops(body)
    assert "k" in inner
    assert to_c(inner["k"].lb) == "s[r]"
    assert to_c(inner["k"].ub) == "s[r + 1]"


def test_transitive_copy_env():
    body, idx = setup("for (i=0;i<n;i++){ a2 = b[i]; m = a2 + 1; y[m] = 1; }")
    env = build_copy_env(body, idx)
    assert "m" in env
    assert "b[i]" in to_c(env["m"])


def test_compound_store_also_records_the_read():
    """``a[i] += x`` on a raw (un-normalized) AST reads the element too."""
    prog = parse_program("for (i = 0; i < n; i++) a[i] += b[i];")
    accs = collect_accesses(prog.stmts[0].body, "i")
    a_reads = [a for a in accs if a.array == "a" and not a.is_write]
    assert len(a_reads) == 1
    assert a_reads[0].subs[0].affine is not None
