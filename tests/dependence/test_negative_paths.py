"""Lemma look-alikes that violate exactly one premise must stay serial.

Each case pairs a positive control (the genuine paper pattern, which
parallelizes with a checker-accepted certificate) with a minimally
perturbed variant that breaks one premise of the lemma.  The variant's
consumer loop must stay serial and must carry NO certificate — a verdict
without a proof is exactly what the proof-carrying design forbids.
"""

from __future__ import annotations

import pytest

from repro.analysis import AnalysisConfig
from repro.lang.astnodes import For
from repro.parallelizer import parallelize


def _top_decisions(result):
    return [
        result.decisions[s.loop_id]
        for s in result.program.stmts
        if isinstance(s, For) and s.loop_id in result.decisions
    ]


def _run(src):
    return parallelize(src, AnalysisConfig.new_algorithm())


def _consumer(src):
    """Decision of the last top-level loop (the property's consumer)."""
    return _top_decisions(_run(src))[-1]


LEMMA1_CONTROL = """
num = 0;
for (i = 0; i < n; i++) {
  if (d[i] > 0) {
    b[num] = i;
    num = num + 1;
  }
}
for (j = 0; j < m; j++) {
  y[b[j]] = y[b[j]] + x[j];
}
"""

# store and increment under *different* guards: the counter no longer
# tracks the store positions, so b need not be monotonic
LEMMA1_SPLIT_GUARDS = """
num = 0;
for (i = 0; i < n; i++) {
  if (d[i] > 0) {
    b[num] = i;
  }
  if (e[i] > 0) {
    num = num + 1;
  }
}
for (j = 0; j < m; j++) {
  y[b[j]] = y[b[j]] + x[j];
}
"""

# store guarded by d[i] > 0 but increment by d[i] > 1: same shape, but the
# premise "same condition" fails
LEMMA1_GUARD_MISMATCH = """
num = 0;
for (i = 0; i < n; i++) {
  if (d[i] > 0) {
    b[num] = i;
  }
  if (d[i] > 1) {
    num = num + 1;
  }
}
for (j = 0; j < m; j++) {
  y[b[j]] = y[b[j]] + x[j];
}
"""

# increment is d[i], not a provably nonnegative constant: SSR premise
# (PNN increment) fails
LEMMA1_NON_PNN_INCREMENT = """
num = 0;
for (i = 0; i < n; i++) {
  if (d[i] > 0) {
    b[num] = i;
    num = num + d[i];
  }
}
for (j = 0; j < m; j++) {
  y[b[j]] = y[b[j]] + x[j];
}
"""

# decrement: monotonicity fails outright
LEMMA1_DECREMENT = """
num = 0;
for (i = 0; i < n; i++) {
  if (d[i] > 0) {
    b[num] = i;
    num = num - 1;
  }
}
for (j = 0; j < m; j++) {
  y[b[j]] = y[b[j]] + x[j];
}
"""

LEMMA2_CONTROL = """
for (i = 0; i < n; i++) {
  for (j = 0; j < 5; j++) {
    b[i][j] = 10 * i + 2 * j;
  }
}
for (p = 0; p < n; p++) {
  for (q = 0; q < 5; q++) {
    y[b[p][q]] = x[p];
  }
}
"""

# α + rl < ru: rows overlap (α=6 but the remainder spans [0:8]), so
# LEMMA 2's gap premise fails and iterations may collide
LEMMA2_GAP_VIOLATED = """
for (i = 0; i < n; i++) {
  for (j = 0; j < 5; j++) {
    b[i][j] = 6 * i + 2 * j;
  }
}
for (p = 0; p < n; p++) {
  for (q = 0; q < 5; q++) {
    y[b[p][q]] = x[p];
  }
}
"""


def test_lemma1_control_parallelizes_with_certificate():
    d = _consumer(LEMMA1_CONTROL)
    assert d.parallel and d.certificate is not None and d.certificate_verified
    assert any(m.lemma == "lemma1" for m in d.certificate.monotonic)


def test_lemma2_control_parallelizes_with_certificate():
    d = _consumer(LEMMA2_CONTROL)
    assert d.parallel and d.certificate is not None and d.certificate_verified
    assert any(m.lemma == "lemma2" for m in d.certificate.monotonic)


@pytest.mark.parametrize(
    "name, src",
    [
        ("split-guards", LEMMA1_SPLIT_GUARDS),
        ("guard-mismatch", LEMMA1_GUARD_MISMATCH),
        ("non-pnn-increment", LEMMA1_NON_PNN_INCREMENT),
        ("decrement", LEMMA1_DECREMENT),
        ("lemma2-gap", LEMMA2_GAP_VIOLATED),
    ],
)
def test_violated_premise_stays_serial_without_certificate(name, src):
    d = _consumer(src)
    assert not d.parallel, f"{name}: look-alike wrongly parallelized"
    assert d.certificate is None, f"{name}: serial verdict carries a certificate"


@pytest.mark.parametrize(
    "src",
    [LEMMA1_SPLIT_GUARDS, LEMMA1_GUARD_MISMATCH, LEMMA1_NON_PNN_INCREMENT, LEMMA1_DECREMENT],
)
def test_no_sma_property_for_violated_lemma1(src):
    res = _run(src)
    from repro.analysis.properties import MonoKind

    for p in res.analysis.properties.all_properties():
        assert not (p.array == "b" and p.kind is MonoKind.SMA)
