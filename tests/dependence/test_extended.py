"""Tests for the extended (monotonicity-aware) dependence test."""

from repro.analysis import AnalysisConfig, analyze_program
from repro.dependence.accesses import collect_accesses, collect_inner_loops
from repro.dependence.extended import extended_independent
from repro.ir.simplify import simplify
from repro.ir.symbols import IntLit, sub


def run_extended(full_src, kernel_nest_index):
    """Analyze the program, then run the extended test on one nest."""
    res = analyze_program(full_src, AnalysisConfig.new_algorithm())
    nest = res.nests[kernel_nest_index]
    idx = nest.header.index
    accesses = collect_accesses(nest.loop.body, idx)
    inner = collect_inner_loops(nest.loop.body)
    from repro.analysis.irbridge import eval_expr

    lo = eval_expr(nest.header.lb).lb
    hi = simplify(sub(eval_expr(nest.header.ub_expr).lb, IntLit(1)))
    return extended_independent(accesses, idx, (lo, hi), res.properties, inner)


AMG = """
irownnz = 0;
for (i = 0; i < num_rows; i++){
    adiag = A_i[i+1] - A_i[i];
    if (adiag > 0)
        A_rownnz[irownnz++] = i;
}
for (i = 0; i < num_rownnz; i++){
    m = A_rownnz[i];
    tempx = y_data[m];
    for (jj = A_i[m]; jj < A_i[m+1]; jj++)
        tempx += A_data[jj] * x_data[A_j[jj]];
    y_data[m] = tempx;
}
"""


def test_amg_direct_indirection_passes_with_check():
    ok, checks, reasons = run_extended(AMG, 1)
    assert ok, reasons
    assert any("irownnz_max" in c.text for c in checks)
    # the paper's exact check: -1+num_rownnz <= irownnz_max
    assert checks[0].text == "-1+num_rownnz <= irownnz_max"


def test_amg_without_property_fails():
    # same kernel but no fill loop => no property => dependence assumed
    src = AMG[AMG.index("for (i = 0; i < num_rownnz"):]
    ok, checks, reasons = run_extended(src, 0)
    assert not ok


SDDMM = """
holder = 1; col_ptr[0] = 0; r = col_val[0];
for (i = 0; i < nonzeros; i++){
    if (col_val[i] != r){
        col_ptr[holder++] = i;
        r = col_val[i];
    }
}
for (r = 0; r < n_cols; ++r){
    for (ind = col_ptr[r]; ind < col_ptr[r+1]; ++ind){
        p[ind] = nnz_val[ind] * 2;
    }
}
"""


def test_sddmm_bound_indirection_passes_with_check():
    ok, checks, reasons = run_extended(SDDMM, 1)
    assert ok, reasons
    assert checks[0].text == "-1+n_cols <= holder_max"


def test_bound_indirection_requires_adjacent_pointers():
    # upper bound reads col_ptr[r+2]: windows may overlap
    src = SDDMM.replace("ind < col_ptr[r+1]", "ind < col_ptr[r+2]")
    ok, _, _ = run_extended(src, 1)
    assert not ok


def test_mismatched_offsets_fail():
    # write through b[i] vs read through b[i+1]: injectivity does not help
    src = """
    irownnz = 0;
    for (i = 0; i < n; i++){
        if (c[i] > 0) b[irownnz++] = i;
    }
    for (i = 0; i < nw; i++){
        y[b[i]] = y[b[i+1]] + 1;
    }
    """
    ok, _, _ = run_extended(src, 1)
    assert not ok


def test_same_constant_offset_passes():
    src = """
    irownnz = 0;
    for (i = 0; i < n; i++){
        if (c[i] > 0) b[irownnz++] = i;
    }
    for (i = 0; i < nw; i++){
        y[b[i]+1] = y[b[i]+1] * 2;
    }
    """
    ok, _, _ = run_extended(src, 1)
    assert ok


def test_nonstrict_property_insufficient_for_direct_writes():
    """MA (non-injective) does not prove distinct elements for y[b[i]]."""
    src = """
    p = 0;
    for (i1 = 0; i1 < n; i1++) {
        b[i1] = p;
        for (i2 = 0; i2 < m; i2++) { if (c[i2] > 0) p = p + 1; }
    }
    for (i = 0; i < n; i++){
        y[b[i]] = i;
    }
    """
    ok, _, _ = run_extended(src, 1)
    assert not ok  # b is only MA: b[i] may equal b[i+1]
