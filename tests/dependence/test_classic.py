"""Tests for the classical dependence tests."""

from repro.analysis.loopinfo import find_loop_nests
from repro.analysis.normalize import normalize_program
from repro.dependence.accesses import collect_accesses
from repro.dependence.classic import classic_independent
from repro.lang.cparser import parse_program


def analyze(src):
    prog = normalize_program(parse_program(src))
    nest = find_loop_nests(prog)[0]
    accesses = collect_accesses(nest.loop.body, nest.header.index)
    return classic_independent(accesses)


def test_disjoint_writes_parallel():
    ok, _ = analyze("for (i = 0; i < n; i++) { a[i] = b[i] + 1; }")
    assert ok


def test_offset_write_read_dependence():
    ok, reasons = analyze("for (i = 1; i < n; i++) { a[i] = a[i-1] + 1; }")
    assert not ok
    assert any("a" in r for r in reasons)


def test_same_element_read_write_ok():
    ok, _ = analyze("for (i = 0; i < n; i++) { a[i] = a[i] * 2; }")
    assert ok


def test_constant_subscript_write_dependence():
    ok, _ = analyze("for (i = 0; i < n; i++) { a[0] = i; }")
    assert not ok


def test_distinct_constants_independent():
    ok, _ = analyze("for (i = 0; i < n; i++) { a[0] = a[1] + i; }")
    # write a[0] vs read a[1]: distinct constants; but write a[0] vs itself
    # collides across iterations
    assert not ok


def test_gcd_test_disproves():
    # writes 2i, reads 2i+1: different parity, never equal
    ok, _ = analyze("for (i = 0; i < n; i++) { a[2*i] = a[2*i+1] + 1; }")
    assert ok


def test_stride_offset_collision():
    # writes 2i, reads 2i+2: collision at distance 1
    ok, _ = analyze("for (i = 0; i < n; i++) { a[2*i] = a[2*i+2] + 1; }")
    assert not ok


def test_multidim_one_dim_disproves():
    ok, _ = analyze("for (i = 0; i < n; i++) { for (j=0;j<m;j++) { c[i][j] = c[i][j+1]; } }")
    assert ok  # dim 0 (i) disproves even though dim 1 overlaps


def test_indirect_read_is_fine():
    ok, _ = analyze("for (i = 0; i < n; i++) { w[i] = p[colidx[i]]; }")
    assert ok


def test_indirect_write_blocks():
    ok, _ = analyze("for (i = 0; i < n; i++) { y[ind[i]] = i; }")
    assert not ok


def test_inner_index_write_blocks_outer():
    ok, _ = analyze(
        "for (r = 0; r < n; r++) { for (k = s[r]; k < s[r+1]; k++) { p[k] = 0; } }"
    )
    assert not ok


def test_loop_variant_scalar_offset_blocks():
    ok, _ = analyze(
        "for (i = 0; i < n; i++) { q = c[i]; a[q] = i; }"
    )
    assert not ok


def test_read_only_arrays_ignored():
    ok, _ = analyze("for (i = 0; i < n; i++) { s[i] = a[i] + a[i+1]; }")
    assert ok


def test_symbolic_invariant_offset_same_form():
    ok, _ = analyze("for (i = 0; i < n; i++) { a[i + base] = a[i + base] + 1; }")
    assert ok


def test_two_writes_same_array_different_offsets():
    ok, _ = analyze("for (i = 0; i < n; i++) { a[i] = 1; a[i+1] = 2; }")
    assert not ok
