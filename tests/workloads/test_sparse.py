"""Workload-generator tests, cross-checked against scipy.sparse."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.sparse import banded_csr, row_counts_only, skewed_csr, uniform_csr


class TestCSRMatrix:
    def test_uniform_structure_valid(self):
        m = uniform_csr(50, 50, nnz_per_row=6, seed=1)
        m.validate()
        assert abs(m.row_nnz().mean() - 6) < 2

    def test_skewed_structure_valid(self):
        m = skewed_csr(80, 80, mean_nnz=5.0, sigma=1.2, seed=2)
        m.validate()
        assert m.row_nnz().max() > m.row_nnz().min()

    def test_banded_structure(self):
        m = banded_csr(20, half_bandwidth=2, seed=3)
        m.validate()
        # interior rows have 5 entries
        assert m.row_nnz()[10] == 5
        assert m.row_nnz()[0] == 3

    def test_spmv_matches_scipy(self):
        scipy = pytest.importorskip("scipy.sparse")
        m = uniform_csr(40, 40, nnz_per_row=5, seed=4)
        sp = scipy.csr_matrix((m.data, m.indices, m.indptr), shape=(40, 40))
        x = np.linspace(-1, 1, 40)
        np.testing.assert_allclose(m.spmv(x), sp @ x, rtol=1e-12)

    def test_csc_colptr_matches_scipy(self):
        scipy = pytest.importorskip("scipy.sparse")
        m = uniform_csr(30, 30, nnz_per_row=4, seed=5)
        sp = scipy.csr_matrix((m.data, m.indices, m.indptr), shape=(30, 30)).tocsc()
        colptr, rows = m.to_csc_colptr()
        np.testing.assert_array_equal(colptr, sp.indptr)

    def test_colptr_is_monotonic(self):
        """The very property the paper's analysis proves about col_ptr."""
        m = skewed_csr(60, 60, mean_nnz=4.0, seed=6)
        colptr, _ = m.to_csc_colptr()
        assert np.all(np.diff(colptr) >= 0)

    def test_determinism(self):
        a = uniform_csr(30, 30, 4, seed=7)
        b = uniform_csr(30, 30, 4, seed=7)
        np.testing.assert_array_equal(a.indices, b.indices)


class TestRowCountsOnly:
    def test_uniform_kind(self):
        c = row_counts_only("uniform", 1000, 30.0, seed=1)
        assert len(c) == 1000
        assert c.min() >= 1

    def test_skewed_kind_has_spread(self):
        c = row_counts_only("skewed", 5000, 30.0, sigma=1.0, seed=2)
        assert c.std() > 5

    def test_skewed_is_spatially_correlated(self):
        """Neighboring entries correlate (clustered heavy regions)."""
        c = row_counts_only("skewed", 20000, 30.0, sigma=1.0, seed=3).astype(float)
        shifted = np.corrcoef(c[:-1], c[1:])[0, 1]
        rng = np.random.default_rng(0)
        shuffled = c.copy()
        rng.shuffle(shuffled)
        baseline = np.corrcoef(shuffled[:-1], shuffled[1:])[0, 1]
        assert shifted > baseline + 0.1

    def test_constant_kind(self):
        c = row_counts_only("constant", 10, 5)
        assert np.all(c == 5)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            row_counts_only("weird", 10, 5)


@given(st.integers(1, 60), st.integers(1, 10), st.integers(0, 1000))
@settings(max_examples=50, deadline=None)
def test_uniform_csr_always_valid(n, nnz, seed):
    m = uniform_csr(n, n, min(nnz, n), seed=seed)
    m.validate()
    # rows sorted, within bounds
    for i in range(m.n_rows):
        row = m.indices[m.indptr[i] : m.indptr[i + 1]]
        assert np.all(np.diff(row) > 0)
