"""Dataset-table tests (AMG matrices, SuiteSparse profiles, NPB classes)."""

import numpy as np
import pytest

from repro.workloads.amg import AMG_DATASETS, row_nnz_profile
from repro.workloads.npb import CG_CLASSES, IS_CLASSES, MG_CLASSES, UA_CLASSES
from repro.workloads.polybench import POLYBENCH_EXTRALARGE
from repro.workloads.suitesparse import SUITESPARSE_PROFILES, suitesparse_profile


class TestAMG:
    def test_five_matrices(self):
        assert list(AMG_DATASETS) == [f"MATRIX{k}" for k in range(1, 6)]

    def test_serial_times_match_table1(self):
        times = [AMG_DATASETS[k].serial_time for k in AMG_DATASETS]
        assert times == [1.44, 3.112, 8.04, 14.5, 28.66]

    def test_row_profile_27_point(self):
        prof = row_nnz_profile(AMG_DATASETS["MATRIX1"])
        g = AMG_DATASETS["MATRIX1"].grid
        assert len(prof) == g**3
        assert prof.max() == 27  # interior
        assert prof.min() == 8  # corners

    def test_rows_scale_with_time(self):
        rows = [AMG_DATASETS[k].grid ** 3 for k in AMG_DATASETS]
        assert all(a < b for a, b in zip(rows, rows[1:]))


class TestSuiteSparse:
    @pytest.mark.parametrize("name", list(SUITESPARSE_PROFILES))
    def test_profile_hits_published_nnz(self, name):
        prof = SUITESPARSE_PROFILES[name]
        counts = suitesparse_profile(name, axis="col")
        assert len(counts) == prof.n_cols
        assert abs(counts.sum() - prof.nnz) / prof.nnz < 0.01

    def test_af_shell_is_balanced(self):
        c = suitesparse_profile("af_shell1").astype(float)
        assert c.std() / c.mean() < 0.2

    def test_gsm_is_skewed(self):
        c = suitesparse_profile("gsm_106857").astype(float)
        assert c.std() / c.mean() > 0.5

    def test_published_dimensions(self):
        assert SUITESPARSE_PROFILES["spal_004"].n_rows == 10203
        assert SUITESPARSE_PROFILES["af_shell1"].n_rows == 504855


class TestNPB:
    def test_ua_class_sizes_grow(self):
        sizes = [UA_CLASSES[c].lelt for c in "ABCD"]
        assert all(a < b for a, b in zip(sizes, sizes[1:]))

    def test_ua_serial_times_match_table1(self):
        assert UA_CLASSES["A"].serial_time == 1.44
        assert UA_CLASSES["D"].serial_time == 874.22

    def test_cg_class_b(self):
        assert CG_CLASSES["B"].na == 75000
        assert CG_CLASSES["B"].serial_time == 40.51

    def test_mg_is_table1(self):
        assert MG_CLASSES["B"].serial_time == 4.8
        assert IS_CLASSES["C"].serial_time == 7.662


class TestPolybench:
    def test_all_four_present(self):
        assert set(POLYBENCH_EXTRALARGE) == {"heat-3d", "fdtd-2d", "gramschmidt", "syrk"}

    def test_serial_times_match_table1(self):
        assert POLYBENCH_EXTRALARGE["heat-3d"].serial_time == 27.85
        assert POLYBENCH_EXTRALARGE["fdtd-2d"].serial_time == 22.83
        assert POLYBENCH_EXTRALARGE["gramschmidt"].serial_time == 17.14
        assert POLYBENCH_EXTRALARGE["syrk"].serial_time == 7.53


class TestLaplacian27:
    def test_profile_matches_materialized_operator(self):
        """row_nnz_profile's tensor formula equals the exact operator."""
        from repro.workloads.amg import laplacian27_csr
        import dataclasses

        g = 6
        ds = dataclasses.replace(AMG_DATASETS["MATRIX1"], grid=g)
        mat = laplacian27_csr(g)
        mat.validate()
        np.testing.assert_array_equal(mat.row_nnz(), row_nnz_profile(ds))

    def test_symmetric_structure(self):
        from repro.workloads.amg import laplacian27_csr

        mat = laplacian27_csr(4)
        scipy = pytest.importorskip("scipy.sparse")
        sp = scipy.csr_matrix(
            (np.ones_like(mat.data), mat.indices, mat.indptr), shape=(64, 64)
        )
        assert (sp != sp.T).nnz == 0
