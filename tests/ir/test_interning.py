"""Invariants of the hash-consed expression IR.

Interning must be *behaviorally invisible*: structurally-equal expressions
become identical objects, cached keys/hashes agree with fresh structural
computations, and the memoized simplifier returns exactly what an
unmemoized run would.  These tests pin all of that down over a corpus
spanning every node kind.
"""

import copy
import pickle

import pytest

from repro.ir import perfstats
from repro.ir.simplify import (
    _simplify_impl,
    clear_caches,
    decompose_affine,
    expand,
    simplify,
)
from repro.ir.symbols import (
    BOTTOM,
    Add,
    ArrayRef,
    BigLambda,
    Bottom,
    Div,
    Expr,
    IntLit,
    LambdaVal,
    Max,
    Min,
    Mod,
    Mul,
    Sym,
    add,
    mul,
    neg,
    smax,
    smin,
    sub,
)

i = Sym("i")
j = Sym("j")
n = Sym("n")
lam = LambdaVal("m")
big = BigLambda("m")


def corpus():
    """Expressions covering every node kind and common analysis shapes."""
    return [
        IntLit(0),
        IntLit(-7),
        i,
        lam,
        big,
        BOTTOM,
        add(i, 1),
        add(i, j, n, 3),
        mul(2, i, j),
        sub(n, 1),
        neg(add(i, j)),
        mul(add(i, 1), add(n, 2)),
        mul(add(i, 1), add(i, 1)),
        Div(add(i, 1), IntLit(2)),
        Div(mul(2, n), IntLit(-1)),
        Mod(add(i, n), IntLit(4)),
        smin(i, n, 3),
        smax(add(i, 1), sub(n, 1)),
        ArrayRef("A_i", [add(i, 1)]),
        ArrayRef("rowptr", [i, j]),
        add(ArrayRef("A_i", [add(i, 1)]), neg(ArrayRef("A_i", [i]))),
        add(mul(lam, 2), big, 1),
        smax(smin(i, n), Mod(i, IntLit(2))),
        add(Div(n, IntLit(2)), mul(3, i), neg(mul(3, i))),
    ]


def structural_key(e: Expr) -> tuple:
    """Recompute the canonical key from scratch (no caches consulted)."""
    if isinstance(e, IntLit):
        return (e._rank, e.value)
    if isinstance(e, Sym):
        return (e._rank, e.name)
    if isinstance(e, (LambdaVal, BigLambda)):
        return (e._rank, e.var)
    if isinstance(e, Bottom):
        return (e._rank,)
    if isinstance(e, ArrayRef):
        return (e._rank, e.name, tuple(structural_key(s) for s in e.subs_))
    if isinstance(e, (Div, Mod)):
        return (e._rank, structural_key(e.num), structural_key(e.den))
    if isinstance(e, (Add, Mul, Min, Max)):
        return (e._rank, tuple(structural_key(o) for o in e.operands))
    raise AssertionError(f"unknown node kind {type(e).__name__}")


class TestInterning:
    def test_structurally_equal_expressions_are_identical(self):
        for a, b in zip(corpus(), corpus()):
            assert a is b, f"{a!r} not interned"

    def test_leaf_interning(self):
        assert IntLit(42) is IntLit(42)
        assert Sym("xyz") is Sym("xyz")
        assert LambdaVal("q") is LambdaVal("q")
        assert BigLambda("q") is BigLambda("q")
        assert Bottom() is BOTTOM

    def test_distinct_expressions_are_distinct(self):
        assert IntLit(1) is not IntLit(2)
        assert Sym("a") is not Sym("b")
        assert LambdaVal("m") is not BigLambda("m")
        assert add(i, 1) is not add(i, 2)

    def test_cached_key_matches_fresh_computation(self):
        for e in corpus():
            assert e.key() == structural_key(e)
            for node in e.walk():
                assert node.key() == structural_key(node)

    def test_cached_hash_agrees_with_equality(self):
        for e in corpus():
            dup = pickle.loads(pickle.dumps(e))
            assert dup is e
            assert hash(dup) == hash(e)

    def test_operator_sugar_interns(self):
        assert (i + 1) is (IntLit(1) + i)
        assert (i * n) is (n * i)
        assert simplify(i - i) is IntLit(0)

    def test_copy_and_deepcopy_return_self(self):
        for e in corpus():
            assert copy.copy(e) is e
            assert copy.deepcopy(e) is e

    def test_deepcopy_of_container_shares_nodes(self):
        exprs = corpus()
        dup = copy.deepcopy({"exprs": exprs})
        for a, b in zip(exprs, dup["exprs"]):
            assert a is b

    def test_rejects_bad_constructor_args(self):
        with pytest.raises(TypeError):
            IntLit("3")
        with pytest.raises(ValueError):
            Sym("")

    def test_intern_stats_exposed(self):
        from repro.ir.symbols import intern_table_sizes

        sizes = intern_table_sizes()
        _ = Sym("a_very_unlikely_fresh_name")
        assert intern_table_sizes()["Sym"] == sizes["Sym"] + 1
        assert perfstats.snapshot()["intern_tables"]["Sym"] == sizes["Sym"] + 1


class TestMemoizedSimplify:
    def test_memoized_equals_unmemoized_across_corpus(self):
        for e in corpus():
            clear_caches()
            cold = simplify(e)
            warm = simplify(e)
            assert warm is cold  # cache returns the interned result
            clear_caches()
            assert _simplify_impl(e) == cold

    def test_expand_memoized_equals_recomputed(self):
        for e in corpus():
            clear_caches()
            first = expand(e)
            assert expand(e) is first
            clear_caches()
            assert expand(e) == first

    def test_simplify_idempotent_through_cache(self):
        for e in corpus():
            s = simplify(e)
            assert simplify(s) == s

    def test_decompose_affine_memoized(self):
        e = add(mul(3, i), n, 2)
        clear_caches()
        first = decompose_affine(e, i)
        again = decompose_affine(e, i)
        assert first == again == (IntLit(3), add(n, 2))

    def test_cache_counters_move(self):
        clear_caches()
        perfstats.reset_counters()
        e = mul(add(i, 1), add(n, 2))
        simplify(e)
        misses = perfstats.STATS.simplify_misses
        assert misses > 0
        simplify(e)
        assert perfstats.STATS.simplify_hits >= 1
        assert perfstats.STATS.simplify_misses == misses
