"""Unit tests for the symbolic expression core."""

import pytest

from repro.ir.symbols import BOTTOM, Add, ArrayRef, BigLambda, Bottom, Div, IntLit, LambdaVal, Min, Mod, Sym, add, as_expr, mul, neg, smax, smin, sub


class TestLeaves:
    def test_intlit_value(self):
        assert IntLit(5).value == 5

    def test_intlit_equality(self):
        assert IntLit(3) == IntLit(3)
        assert IntLit(3) != IntLit(4)

    def test_intlit_rejects_non_int(self):
        with pytest.raises(TypeError):
            IntLit("x")

    def test_intlit_str(self):
        assert str(IntLit(-7)) == "-7"

    def test_sym_name(self):
        assert Sym("n").name == "n"
        assert str(Sym("n")) == "n"

    def test_sym_requires_name(self):
        with pytest.raises(ValueError):
            Sym("")

    def test_sym_equality_and_hash(self):
        assert Sym("a") == Sym("a")
        assert hash(Sym("a")) == hash(Sym("a"))
        assert Sym("a") != Sym("b")

    def test_lambda_str_and_spelled(self):
        lam = LambdaVal("m")
        assert str(lam) == "λ_m"
        assert lam.spelled == "lambda_m"

    def test_biglambda_str_and_spelled(self):
        big = BigLambda("sc")
        assert str(big) == "Λ_sc"
        assert big.spelled == "Lambda_sc"

    def test_lambda_vs_biglambda_distinct(self):
        assert LambdaVal("x") != BigLambda("x")

    def test_bottom_singleton_semantics(self):
        assert BOTTOM == Bottom()
        assert str(BOTTOM) == "⊥"

    def test_bottom_cannot_evaluate(self):
        with pytest.raises(ValueError):
            BOTTOM.evaluate({})

    def test_immutability(self):
        with pytest.raises(AttributeError):
            IntLit(1).value = 2
        with pytest.raises(AttributeError):
            Sym("x").name = "y"


class TestConstructors:
    def test_as_expr_int(self):
        assert as_expr(5) == IntLit(5)

    def test_as_expr_passthrough(self):
        e = Sym("x")
        assert as_expr(e) is e

    def test_as_expr_rejects_bool(self):
        with pytest.raises(TypeError):
            as_expr(True)

    def test_add_folds_constants(self):
        assert add(2, 3) == IntLit(5)

    def test_add_flattens(self):
        e = add(Sym("a"), add(Sym("b"), 1), 2)
        assert isinstance(e, Add)
        assert IntLit(3) in e.operands

    def test_add_drops_zero(self):
        assert add(Sym("a"), 0) == Sym("a")

    def test_add_bottom_absorbs(self):
        assert add(Sym("a"), BOTTOM) == BOTTOM

    def test_mul_folds_constants(self):
        assert mul(2, 3) == IntLit(6)

    def test_mul_zero_annihilates(self):
        assert mul(Sym("a"), 0) == IntLit(0)

    def test_mul_one_identity(self):
        assert mul(Sym("a"), 1) == Sym("a")

    def test_mul_bottom_absorbs(self):
        assert mul(Sym("a"), BOTTOM) == BOTTOM

    def test_neg(self):
        assert neg(IntLit(4)) == IntLit(-4)

    def test_sub_self_is_zero_after_simplify(self):
        from repro.ir.simplify import simplify

        assert simplify(sub(Sym("x"), Sym("x"))) == IntLit(0)

    def test_smin_folds_literals(self):
        assert smin(3, 7) == IntLit(3)

    def test_smax_folds_literals(self):
        assert smax(3, 7) == IntLit(7)

    def test_smin_dedupes(self):
        assert smin(Sym("a"), Sym("a")) == Sym("a")

    def test_smin_keeps_symbolic(self):
        e = smin(Sym("a"), 4)
        assert isinstance(e, Min)

    def test_operator_sugar(self):
        i = Sym("i")
        e = (i + 1) * 2 - i
        from repro.ir.simplify import simplify

        assert simplify(e) == simplify(add(Sym("i"), 2))


class TestStructure:
    def test_walk_yields_all_nodes(self):
        e = add(mul(Sym("a"), Sym("b")), 3)
        names = {n.name for n in e.walk() if isinstance(n, Sym)}
        assert names == {"a", "b"}

    def test_free_symbols(self):
        e = add(Sym("a"), LambdaVal("m"), IntLit(2))
        assert e.free_symbols() == frozenset({Sym("a")})

    def test_lambda_vals(self):
        e = add(LambdaVal("m"), Sym("x"))
        assert e.lambda_vals() == frozenset({LambdaVal("m")})

    def test_contains(self):
        e = mul(add(Sym("i"), 1), Sym("k"))
        assert e.contains(Sym("i"))
        assert not e.contains(Sym("z"))

    def test_subs_replaces_leaf(self):
        e = add(Sym("i"), 1)
        assert e.subs({Sym("i"): IntLit(4)}) == IntLit(5)

    def test_subs_top_level_match(self):
        e = Sym("i")
        assert e.subs({Sym("i"): Sym("j")}) == Sym("j")

    def test_subs_no_match_returns_same(self):
        e = add(Sym("i"), 1)
        assert e.subs({Sym("q"): IntLit(0)}) is e

    def test_arrayref_children_and_rebuild(self):
        r = ArrayRef("A", [Sym("i"), IntLit(0)])
        assert r.children() == (Sym("i"), IntLit(0))
        r2 = r.rebuild((IntLit(1), IntLit(0)))
        assert r2 == ArrayRef("A", [IntLit(1), IntLit(0)])

    def test_arrayref_str(self):
        assert str(ArrayRef("A_i", [add(Sym("i"), 1)])) == "A_i[1+i]"

    def test_ordering_is_total(self):
        exprs = [IntLit(3), Sym("a"), LambdaVal("x"), add(Sym("a"), 1)]
        assert sorted(exprs, key=lambda e: e.key())


class TestEvaluate:
    def test_arith(self):
        e = add(mul(Sym("a"), 3), 2)
        assert e.evaluate({"a": 4}) == 14

    def test_lambda_markers(self):
        e = add(LambdaVal("m"), 1)
        assert e.evaluate({"lambda_m": 9}) == 10

    def test_biglambda_markers(self):
        assert BigLambda("m").evaluate({"Lambda_m": 3}) == 3

    def test_missing_symbol_raises(self):
        with pytest.raises(KeyError):
            Sym("q").evaluate({})

    def test_div_truncates_toward_zero(self):
        assert Div(IntLit(-7), IntLit(2)).evaluate({}) == -3
        assert Div(IntLit(7), IntLit(2)).evaluate({}) == 3

    def test_mod_c_semantics(self):
        assert Mod(IntLit(-7), IntLit(2)).evaluate({}) == -1
        assert Mod(IntLit(7), IntLit(-2)).evaluate({}) == 1

    def test_min_max(self):
        env = {"a": 2, "b": 5}
        assert smin(Sym("a"), Sym("b")).evaluate(env) == 2
        assert smax(Sym("a"), Sym("b")).evaluate(env) == 5

    def test_arrayref_evaluate(self):
        import numpy as np

        e = ArrayRef("A", [IntLit(2)])
        assert e.evaluate({"A": np.array([10, 20, 30])}) == 30
