"""Unit tests for the Range Dictionary."""

from repro.ir.rangedict import RangeDict
from repro.ir.ranges import SymRange
from repro.ir.symbols import BOTTOM, IntLit, Sym

i = Sym("i")
n = Sym("n")


def test_set_and_lookup():
    rd = RangeDict().set(i, SymRange(0, 4))
    assert rd.range_of(i) == SymRange(0, 4)
    assert rd.range_of(n) is None


def test_set_is_functional():
    rd = RangeDict()
    rd2 = rd.set(i, SymRange(0, 1))
    assert i not in rd
    assert i in rd2


def test_remove():
    rd = RangeDict().set(i, SymRange(0, 1))
    assert rd.remove(i).range_of(i) is None
    assert rd.remove(n) is rd  # no-op


def test_refine_intersects_missing_bounds():
    rd = RangeDict().set(i, SymRange(0, BOTTOM))
    rd2 = rd.refine(i, SymRange(BOTTOM, 9))
    assert rd2.range_of(i) == SymRange(0, 9)


def test_refine_without_existing_sets():
    rd = RangeDict().refine(i, SymRange(1, 2))
    assert rd.range_of(i) == SymRange(1, 2)


def test_merge_unions_common_symbols():
    a = RangeDict().set(i, SymRange(0, 4)).set(n, SymRange(1, 1))
    b = RangeDict().set(i, SymRange(2, 9))
    m = a.merge(b)
    assert m.range_of(i) == SymRange(0, 9)
    assert m.range_of(n) is None  # only on one side: dropped


def test_widen_keeps_stable_bounds():
    prev = RangeDict().set(i, SymRange(0, 5))
    cur = RangeDict().set(i, SymRange(0, 6))
    w = cur.widen(prev)
    r = w.range_of(i)
    assert r.lb == IntLit(0)
    assert not r.has_ub


def test_len_and_str():
    rd = RangeDict().set(i, SymRange(0, 1))
    assert len(rd) == 1
    assert "i" in str(rd)
