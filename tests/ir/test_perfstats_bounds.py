"""Bounded result caches and intern-table caps.

Long-lived drivers (figure regeneration, fuzzing, the experiment pool)
must not grow memoization state without bound: every result cache is an
LRU :class:`~repro.ir.perfstats.BoundedCache` and the hash-consing intern
tables evict their oldest half past the cap.  ``REPRO_CACHE_MAX_ENTRIES``
is the escape hatch (tighten, widen, or ``0`` = unbounded) and is re-read
at run time, so a driver can adjust it mid-flight.
"""

from __future__ import annotations

from repro.ir import perfstats


class TestBoundedCache:
    def test_lru_eviction_bumps_counter(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "3")
        c = perfstats.BoundedCache()
        before = perfstats.STATS.cache_evictions
        for k in "abc":
            c[k] = k.upper()
        assert c.get("a") == "A"  # refreshes recency: b is now the LRU
        c["d"] = "D"
        assert "a" in c and "d" in c
        assert "b" not in c
        assert len(c) == 3
        assert perfstats.STATS.cache_evictions == before + 1

    def test_zero_cap_is_unbounded(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "0")
        c = perfstats.BoundedCache()
        before = perfstats.STATS.cache_evictions
        for i in range(perfstats.DEFAULT_CACHE_MAX_ENTRIES + 10):
            c[i] = i
        assert len(c) == perfstats.DEFAULT_CACHE_MAX_ENTRIES + 10
        assert perfstats.STATS.cache_evictions == before

    def test_cap_is_reread_at_runtime(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "10")
        c = perfstats.BoundedCache()
        for i in range(10):
            c[i] = i
        monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "4")
        c["new"] = 1  # insertion under the tighter cap shrinks to it
        assert len(c) == 4
        assert "new" in c

    def test_garbage_env_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "not-a-number")
        assert perfstats.cache_max_entries() == perfstats.DEFAULT_CACHE_MAX_ENTRIES

    def test_production_caches_are_bounded(self):
        """Every registered memoization cache is an LRU BoundedCache."""
        from repro.analysis.analyzer import _ANALYSIS_CACHE, _NEST_CACHE
        from repro.parallelizer.driver import _NESTDEC_CACHE, _PARALLELIZE_CACHE

        for cache in (_ANALYSIS_CACHE, _NEST_CACHE, _NESTDEC_CACHE, _PARALLELIZE_CACHE):
            assert isinstance(cache, perfstats.BoundedCache)

    def test_concurrent_hammer(self, monkeypatch):
        """8 threads of mixed get/set/pop/iter/clear traffic stay safe.

        The daemon's reply cache and the analysis result caches are hit
        from the event loop and compute threads concurrently — the lock
        must keep the LRU structurally intact (no KeyError from a
        mid-eviction read, no over-cap growth, no wedged lock).
        """
        import random
        import threading

        monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "64")
        c = perfstats.BoundedCache()
        errors = []

        def worker(tid):
            rng = random.Random(tid)
            try:
                for i in range(4000):
                    k = rng.randrange(256)
                    op = i % 7
                    if op in (0, 1):
                        c[k] = (tid, i)
                    elif op == 2:
                        v = c.get(k)
                        assert v is None or isinstance(v, tuple)
                    elif op == 3:
                        k in c  # noqa: B015 - exercising __contains__
                    elif op == 4:
                        assert len(c) <= 64
                    elif op == 5:
                        c.pop(k)
                    else:
                        for kk in c:  # snapshot iteration under writes
                            c.get(kk)
                if tid == 0:
                    c.clear()
            except Exception as exc:  # noqa: BLE001 - collected for the assert
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not any(t.is_alive() for t in threads), "hammer wedged"
        assert not errors, errors
        assert len(c) <= 64
        c["after"] = 1
        assert c.get("after") == 1  # still functional after the storm

    def test_analysis_survives_a_cap_of_one(self, monkeypatch):
        """Correctness under extreme pressure: with room for one entry the
        caches thrash but results stay right."""
        from repro.analysis import AnalysisConfig
        from repro.parallelizer import parallelize

        monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "1")
        before = perfstats.STATS.cache_evictions
        srcs = [
            f"for (i = 0; i < n; i++) bnd{k}[i] = bnd{k}[i] + {k};\n"
            for k in range(3)
        ]
        for src in srcs + srcs:
            res = parallelize(src, AnalysisConfig.new_algorithm())
            assert res.decisions
        assert perfstats.STATS.cache_evictions > before


class TestInternEviction:
    def test_oldest_half_dropped(self, monkeypatch):
        monkeypatch.setattr(perfstats, "_caps", lambda: (4096, 8))
        table = {i: i for i in range(10)}
        before = perfstats.STATS.intern_evictions
        perfstats.evict_intern_overflow(table)
        assert len(table) == 5
        assert set(table) == {5, 6, 7, 8, 9}
        assert perfstats.STATS.intern_evictions == before + 5

    def test_under_cap_is_untouched(self, monkeypatch):
        monkeypatch.setattr(perfstats, "_caps", lambda: (4096, 16))
        table = {i: i for i in range(10)}
        perfstats.evict_intern_overflow(table)
        assert len(table) == 10

    def test_interning_keeps_working_after_eviction(self, monkeypatch):
        """Evicted nodes lose identity sharing, never equality."""
        from repro.ir import symbols

        monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "1")  # tiny intern cap? no:
        # the intern cap never drops below its default via the env knob, so
        # drive the eviction helper directly on a live-shaped table instead
        monkeypatch.setattr(perfstats, "_caps", lambda: (4096, 4))
        a = symbols.Sym("bounded_probe_a")
        table = {("k", i): i for i in range(6)}
        perfstats.evict_intern_overflow(table)
        assert len(table) == 3
        b = symbols.Sym("bounded_probe_a")
        assert a == b  # structural equality survives any eviction policy
