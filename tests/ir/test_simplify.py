"""Unit tests for the canonicalizing simplifier."""


from repro.ir.simplify import (
    coefficient_of,
    collect,
    decompose_affine,
    equals,
    expand,
    is_const_int,
    simplify,
)
from repro.ir.symbols import (
    ArrayRef,
    Div,
    IntLit,
    LambdaVal,
    Mod,
    Sym,
    add,
    mul,
    smax,
    smin,
    sub,
)

i = Sym("i")
n = Sym("n")
k = Sym("k")


class TestExpand:
    def test_distributes_product_over_sum(self):
        e = expand(mul(add(i, 1), add(n, 2)))
        assert equals(e, add(mul(i, n), mul(i, 2), n, 2))

    def test_nested_distribution(self):
        e = expand(mul(add(i, 1), add(i, 1)))
        assert equals(e, add(mul(i, i), mul(2, i), 1))

    def test_leaves_leaf_alone(self):
        assert expand(i) == i

    def test_div_is_opaque(self):
        e = Div(add(i, 1), IntLit(2))
        assert isinstance(expand(e), Div)


class TestCollect:
    def test_collects_like_terms(self):
        e = collect(add(mul(3, i), mul(2, i)))
        assert e == mul(5, i)

    def test_cancellation(self):
        e = collect(add(i, mul(-1, i)))
        assert e == IntLit(0)

    def test_mixed_terms(self):
        e = collect(add(i, n, i, 4))
        assert equals(e, add(mul(2, i), n, 4))


class TestSimplify:
    def test_idempotent(self):
        e = simplify(mul(add(i, 1), 5))
        assert simplify(e) == e

    def test_difference_of_equal_exprs(self):
        a = mul(add(i, n), 2)
        b = add(mul(2, i), mul(2, n))
        assert simplify(sub(a, b)) == IntLit(0)

    def test_div_by_one(self):
        assert simplify(Div(i, IntLit(1))) == i

    def test_div_by_minus_one(self):
        assert simplify(Div(i, IntLit(-1))) == mul(-1, i)

    def test_div_constants(self):
        assert simplify(Div(IntLit(9), IntLit(2))) == IntLit(4)
        assert simplify(Div(IntLit(-9), IntLit(2))) == IntLit(-4)

    def test_div_self(self):
        assert simplify(Div(add(i, 1), add(i, 1))) == IntLit(1)

    def test_zero_numerator(self):
        assert simplify(Div(IntLit(0), n)) == IntLit(0)

    def test_mod_constants(self):
        assert simplify(Mod(IntLit(7), IntLit(3))) == IntLit(1)

    def test_mod_by_one(self):
        assert simplify(Mod(i, IntLit(1))) == IntLit(0)

    def test_mod_self(self):
        assert simplify(Mod(add(i, 2), add(i, 2))) == IntLit(0)

    def test_min_max_folding(self):
        assert simplify(smin(IntLit(3), IntLit(5))) == IntLit(3)
        assert simplify(smax(IntLit(3), IntLit(5))) == IntLit(5)

    def test_simplify_through_arrayref(self):
        e = ArrayRef("A", [add(i, 1, -1)])
        assert simplify(e) == ArrayRef("A", [i])

    def test_lambda_arith(self):
        lam = LambdaVal("m")
        assert simplify(sub(add(lam, 1), lam)) == IntLit(1)


class TestDecomposeAffine:
    def test_simple(self):
        coeff, rem = decompose_affine(add(mul(5, i), 3), i)
        assert coeff == IntLit(5)
        assert rem == IntLit(3)

    def test_symbolic_coefficient(self):
        coeff, rem = decompose_affine(add(mul(n, i), k), i)
        assert coeff == n
        assert rem == k

    def test_zero_coefficient(self):
        coeff, rem = decompose_affine(add(n, 2), i)
        assert coeff == IntLit(0)
        assert equals(rem, add(n, 2))

    def test_quadratic_rejected(self):
        assert decompose_affine(mul(i, i), i) is None

    def test_nested_in_arrayref_rejected(self):
        e = ArrayRef("A", [i])
        assert decompose_affine(e, i) is None
        assert decompose_affine(add(e, 1), i) is None

    def test_lambda_atom(self):
        lam = LambdaVal("p")
        coeff, rem = decompose_affine(add(lam, 1), lam)
        assert coeff == IntLit(1)
        assert rem == IntLit(1)

    def test_coefficient_of(self):
        assert coefficient_of(add(mul(125, i), 3), i) == IntLit(125)
        assert coefficient_of(mul(i, i), i) is None


class TestHelpers:
    def test_is_const_int(self):
        assert is_const_int(add(2, 3)) == 5
        assert is_const_int(i) is None

    def test_equals(self):
        assert equals(mul(2, add(i, 1)), add(mul(2, i), 2))
        assert not equals(i, n)
