"""Property-based tests (hypothesis) for the symbolic core.

The key soundness contracts:

* simplification/expansion preserve numeric value on every environment;
* affine decomposition reconstructs the original expression;
* interval arithmetic is *containing*: if x ∈ [a] and y ∈ [b] then
  x op y ∈ [a] op [b];
* sign determination never claims a sign the expression can violate.
"""

from hypothesis import given, settings, strategies as st

from repro.ir.rangedict import RangeDict
from repro.ir.ranges import Sign, SymRange, range_eval, sign_of
from repro.ir.simplify import decompose_affine, expand, simplify
from repro.ir.symbols import IntLit, Sym, add, mul, sub

NAMES = ["i", "n", "k", "m"]


@st.composite
def exprs(draw, depth=0):
    """Random integer expressions over a small symbol pool."""
    if depth >= 3:
        leaf = draw(st.sampled_from(["int", "sym"]))
    else:
        leaf = draw(st.sampled_from(["int", "sym", "add", "mul", "sub"]))
    if leaf == "int":
        return IntLit(draw(st.integers(-20, 20)))
    if leaf == "sym":
        return Sym(draw(st.sampled_from(NAMES)))
    a = draw(exprs(depth=depth + 1))
    b = draw(exprs(depth=depth + 1))
    if leaf == "add":
        return add(a, b)
    if leaf == "sub":
        return sub(a, b)
    return mul(a, b)


@st.composite
def envs(draw):
    return {n: draw(st.integers(-50, 50)) for n in NAMES}


@given(exprs(), envs())
@settings(max_examples=200, deadline=None)
def test_simplify_preserves_value(e, env):
    assert simplify(e).evaluate(env) == e.evaluate(env)


@given(exprs(), envs())
@settings(max_examples=200, deadline=None)
def test_expand_preserves_value(e, env):
    assert expand(e).evaluate(env) == e.evaluate(env)


@given(exprs(), envs())
@settings(max_examples=150, deadline=None)
def test_simplify_idempotent(e, env):
    s = simplify(e)
    assert simplify(s) == s


@given(exprs(), envs())
@settings(max_examples=150, deadline=None)
def test_decompose_affine_reconstructs(e, env):
    atom = Sym("i")
    dec = decompose_affine(e, atom)
    if dec is None:
        return
    coeff, rem = dec
    rebuilt = add(mul(coeff, atom), rem)
    assert rebuilt.evaluate(env) == e.evaluate(env)


@given(
    st.integers(-30, 30),
    st.integers(0, 30),
    st.integers(-30, 30),
    st.integers(0, 30),
    st.integers(-5, 5),
)
@settings(max_examples=200, deadline=None)
def test_interval_arithmetic_containment(a_lo, a_w, b_lo, b_w, scale):
    ra = SymRange(a_lo, a_lo + a_w)
    rb = SymRange(b_lo, b_lo + b_w)
    # sample endpoints and midpoints
    for x in (a_lo, a_lo + a_w // 2, a_lo + a_w):
        for y in (b_lo, b_lo + b_w // 2, b_lo + b_w):
            s = ra + rb
            assert s.lb.evaluate({}) <= x + y <= s.ub.evaluate({})
            d = ra - rb
            assert d.lb.evaluate({}) <= x - y <= d.ub.evaluate({})
        m = ra.scale(scale)
        if not m.is_unknown:
            assert m.lb.evaluate({}) <= x * scale <= m.ub.evaluate({})


@given(st.integers(-30, 30), st.integers(0, 30), st.integers(-30, 30), st.integers(0, 30))
@settings(max_examples=200, deadline=None)
def test_union_contains_both(a_lo, a_w, b_lo, b_w):
    ra = SymRange(a_lo, a_lo + a_w)
    rb = SymRange(b_lo, b_lo + b_w)
    u = ra.union(rb)
    lo, hi = u.lb.evaluate({}), u.ub.evaluate({})
    assert lo <= a_lo and hi >= a_lo + a_w
    assert lo <= b_lo and hi >= b_lo + b_w


@given(exprs(), envs(), st.integers(0, 40))
@settings(max_examples=200, deadline=None)
def test_sign_of_is_sound(e, env, i_hi):
    # constrain i to [0:i_hi] and test with a consistent sample
    env = dict(env)
    env["i"] = min(max(env["i"], 0), i_hi)
    rd = RangeDict().set(Sym("i"), SymRange(0, i_hi))
    s = sign_of(e, rd)
    v = e.evaluate(env)
    if s is Sign.POSITIVE:
        assert v > 0
    elif s is Sign.NEGATIVE:
        assert v < 0
    elif s is Sign.ZERO:
        assert v == 0
    elif s is Sign.NONNEGATIVE:
        assert v >= 0
    elif s is Sign.NONPOSITIVE:
        assert v <= 0


@given(exprs(), st.integers(0, 20), st.integers(0, 20))
@settings(max_examples=150, deadline=None)
def test_range_eval_contains_all_samples(e, i_hi, n_hi):
    rd = RangeDict().set(Sym("i"), SymRange(0, i_hi)).set(Sym("n"), SymRange(0, n_hi))
    r = range_eval(e, rd)
    for iv in {0, i_hi // 2, i_hi}:
        for nv in {0, n_hi // 2, n_hi}:
            env = {"i": iv, "n": nv, "k": 0, "m": 0}
            v = e.evaluate(env)
            if r.has_lb:
                assert r.lb.evaluate(env) <= v
            if r.has_ub:
                assert v <= r.ub.evaluate(env)
