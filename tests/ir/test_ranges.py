"""Unit tests for symbolic ranges and sign determination."""


from repro.ir.rangedict import RangeDict
from repro.ir.ranges import Sign, SymRange, range_eval, sign_of, value_union
from repro.ir.symbols import (
    BOTTOM,
    ArrayRef,
    IntLit,
    LambdaVal,
    Min,
    Sym,
    add,
    mul,
    sub,
)

i = Sym("i")
n = Sym("n")


class TestSymRangeBasics:
    def test_point(self):
        r = SymRange.point(5)
        assert r.is_point
        assert r.lb == IntLit(5) and r.ub == IntLit(5)

    def test_unknown(self):
        r = SymRange.unknown()
        assert r.is_unknown
        assert not r.has_lb and not r.has_ub

    def test_half_bounded(self):
        r = SymRange(0, BOTTOM)
        assert r.has_lb and not r.has_ub

    def test_str(self):
        assert str(SymRange(0, sub(n, 1))) == "[0:-1+n]"
        assert str(SymRange.point(i)) == "i"

    def test_eq_hash(self):
        assert SymRange(0, n) == SymRange(0, n)
        assert hash(SymRange(0, n)) == hash(SymRange(0, n))

    def test_bounds_are_simplified(self):
        r = SymRange(add(i, 1, -1), add(n, 0))
        assert r.lb == i and r.ub == n


class TestArithmetic:
    def test_add_ranges(self):
        r = SymRange(0, 4) + SymRange(1, 2)
        assert r == SymRange(1, 6)

    def test_add_expr(self):
        r = SymRange(0, 4) + i
        assert r == SymRange(i, add(i, 4))

    def test_sub_ranges(self):
        r = SymRange(5, 10) - SymRange(1, 2)
        assert r == SymRange(3, 9)

    def test_add_unknown_side(self):
        r = SymRange(0, BOTTOM) + SymRange(1, 1)
        assert r.lb == IntLit(1)
        assert not r.has_ub

    def test_scale_positive(self):
        assert SymRange(1, 3).scale(5) == SymRange(5, 15)

    def test_scale_negative_swaps(self):
        assert SymRange(1, 3).scale(-2) == SymRange(-6, -2)

    def test_scale_unknown_sign_gives_unknown(self):
        assert SymRange(1, 3).scale(n).is_unknown

    def test_scale_with_bounds_provider(self):
        rd = RangeDict().set(n, SymRange(1, BOTTOM))
        r = SymRange(0, 4).scale(n, rd)
        assert r == SymRange(0, mul(4, n))


class TestUnionWiden:
    def test_union_constants(self):
        assert SymRange(0, 4).union(SymRange(2, 9)) == SymRange(0, 9)

    def test_union_folds_provable(self):
        lam = LambdaVal("m")
        u = SymRange.point(lam).union(SymRange.point(add(lam, 1)))
        assert u == SymRange(lam, add(lam, 1))

    def test_union_unprovable_keeps_min(self):
        u = SymRange.point(i).union(SymRange.point(n))
        assert isinstance(u.lb, Min)

    def test_value_union(self):
        u = value_union([SymRange(0, 1), SymRange(5, 9), SymRange(2, 3)])
        assert u == SymRange(0, 9)

    def test_value_union_empty(self):
        assert value_union([]).is_unknown

    def test_widen_drops_unstable_bounds(self):
        a = SymRange(0, 5)
        b = SymRange(0, 6)
        w = a.widen_against(b)
        assert w.lb == IntLit(0)
        assert not w.has_ub


class TestComparisons:
    def test_lt_constants(self):
        assert SymRange(0, 4).lt(SymRange(5, 9))
        assert not SymRange(0, 5).lt(SymRange(5, 9))

    def test_le(self):
        assert SymRange(0, 5).le(SymRange(5, 9))
        assert not SymRange(0, 6).le(SymRange(5, 9))

    def test_lt_symbolic(self):
        a = SymRange(i, add(i, 4))
        b = SymRange(add(i, 5), add(i, 9))
        assert a.lt(b)

    def test_lt_unknown_bounds_false(self):
        assert not SymRange(0, BOTTOM).lt(SymRange(5, 9))


class TestSignOf:
    def test_literals(self):
        assert sign_of(IntLit(3)) is Sign.POSITIVE
        assert sign_of(IntLit(0)) is Sign.ZERO
        assert sign_of(IntLit(-2)) is Sign.NEGATIVE

    def test_unknown_symbol(self):
        assert sign_of(n) is Sign.UNKNOWN

    def test_symbol_with_bounds(self):
        rd = RangeDict().set(i, SymRange(0, sub(n, 1)))
        assert sign_of(i, rd) is Sign.NONNEGATIVE
        assert sign_of(add(i, 1), rd) is Sign.POSITIVE

    def test_sum_rules(self):
        rd = RangeDict().set(i, SymRange(0, BOTTOM))
        assert sign_of(add(i, 5), rd) is Sign.POSITIVE
        assert sign_of(add(mul(-1, i), -1), rd) is Sign.NEGATIVE

    def test_product_rules(self):
        rd = RangeDict().set(i, SymRange(1, BOTTOM)).set(n, SymRange(0, BOTTOM))
        assert sign_of(mul(i, i), rd) is Sign.POSITIVE
        assert sign_of(mul(i, n), rd) is Sign.NONNEGATIVE
        assert sign_of(mul(IntLit(-1), i), rd) is Sign.NEGATIVE

    def test_pnn_predicate(self):
        assert Sign.POSITIVE.is_pnn
        assert Sign.NONNEGATIVE.is_pnn
        assert Sign.ZERO.is_pnn
        assert not Sign.NEGATIVE.is_pnn
        assert not Sign.UNKNOWN.is_pnn

    def test_whole_expression_fact(self):
        trip = sub(n, 1)
        rd = RangeDict().set(trip, SymRange(0, BOTTOM))
        assert sign_of(trip, rd).is_pnn

    def test_min_max_signs(self):
        rd = RangeDict().set(i, SymRange(1, BOTTOM))
        from repro.ir.symbols import smax, smin

        assert sign_of(smin(i, IntLit(3)), rd) is Sign.POSITIVE
        assert sign_of(smax(n, IntLit(1)), rd) is Sign.POSITIVE
        assert sign_of(smin(n, IntLit(-1)), rd) is Sign.NEGATIVE

    def test_div_weakens_positive(self):
        rd = RangeDict().set(i, SymRange(1, BOTTOM))
        from repro.ir.symbols import Div

        assert sign_of(Div(i, IntLit(2)), rd) is Sign.NONNEGATIVE


class TestRangeEval:
    def test_substitutes_symbol_range(self):
        rd = RangeDict().set(i, SymRange(0, 4))
        assert range_eval(add(mul(25, i), 3), rd) == SymRange(3, 103)

    def test_negative_coefficient(self):
        rd = RangeDict().set(i, SymRange(0, 4))
        assert range_eval(mul(-2, i), rd) == SymRange(-8, 0)

    def test_unknown_symbol_stays_symbolic(self):
        r = range_eval(add(n, 1), RangeDict())
        assert r == SymRange.point(add(n, 1))

    def test_arrayref_subscript_substitution(self):
        rd = RangeDict().set(LambdaVal("m"), SymRange.point(IntLit(2)))
        r = range_eval(ArrayRef("A", [add(LambdaVal("m"), 1)]), rd)
        assert r == SymRange.point(ArrayRef("A", [IntLit(3)]))

    def test_arrayref_with_range_subscript_unknown(self):
        rd = RangeDict().set(i, SymRange(0, 4))
        r = range_eval(ArrayRef("A", [i]), rd)
        assert r.is_unknown

    def test_pnn_range(self):
        assert SymRange(0, n).is_pnn()
        assert SymRange(1, n).is_positive()
        assert not SymRange(-1, n).is_pnn()
