"""Wire-format units: framing, size caps, malformed input, histograms."""

from __future__ import annotations

import socket
import struct
import threading

import pytest

from repro.service import protocol
from repro.service.metrics import LatencyHistogram


def _loopback_pair():
    """A connected (client, server) socket pair."""
    return socket.socketpair()


class TestFraming:
    def test_roundtrip(self):
        a, b = _loopback_pair()
        try:
            msg = {"op": "analyze", "programs": [{"id": "x", "source": "s" * 500}]}
            protocol.send_frame(a, msg)
            assert protocol.recv_frame(b) == msg
        finally:
            a.close()
            b.close()

    def test_multiple_frames_stay_separate(self):
        a, b = _loopback_pair()
        try:
            for i in range(5):
                protocol.send_frame(a, {"i": i})
            for i in range(5):
                assert protocol.recv_frame(b) == {"i": i}
        finally:
            a.close()
            b.close()

    def test_oversized_length_prefix_rejected(self):
        a, b = _loopback_pair()
        try:
            a.sendall(struct.pack(">I", protocol.MAX_FRAME_BYTES + 1))
            with pytest.raises(protocol.ProtocolError, match="exceeds"):
                protocol.recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_encode_rejects_oversized_payload(self, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 64)
        with pytest.raises(protocol.ProtocolError):
            protocol.encode_frame({"pad": "x" * 100})

    def test_truncated_frame_raises(self):
        a, b = _loopback_pair()
        try:
            frame = protocol.encode_frame({"op": "ping"})
            a.sendall(frame[: len(frame) - 3])
            a.close()
            with pytest.raises(protocol.ProtocolError, match="mid-frame"):
                protocol.recv_frame(b)
        finally:
            b.close()

    def test_non_json_body_raises(self):
        a, b = _loopback_pair()
        try:
            body = b"\xff\xfe not json"
            a.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(protocol.ProtocolError, match="JSON"):
                protocol.recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_non_object_body_raises(self):
        with pytest.raises(protocol.ProtocolError, match="object"):
            protocol.decode_body(b"[1, 2, 3]")

    def test_concurrent_senders_do_not_interleave(self):
        # sendall of one encoded frame is atomic enough over a socketpair;
        # this guards the invariant the client library relies on
        a, b = _loopback_pair()
        try:
            n_threads, per_thread = 4, 25

            def sender(tid):
                for i in range(per_thread):
                    protocol.send_frame(a, {"tid": tid, "i": i, "pad": "p" * 64})

            threads = [threading.Thread(target=sender, args=(t,)) for t in range(n_threads)]
            for t in threads:
                t.start()
            seen = 0
            for _ in range(n_threads * per_thread):
                msg = protocol.recv_frame(b)
                assert set(msg) == {"tid", "i", "pad"}
                seen += 1
            for t in threads:
                t.join()
            assert seen == n_threads * per_thread
        finally:
            a.close()
            b.close()


class TestLatencyHistogram:
    def test_empty(self):
        h = LatencyHistogram()
        assert h.percentile(99) is None
        assert h.snapshot() == {"count": 0.0}

    def test_percentiles_order(self):
        h = LatencyHistogram()
        for us in (100, 200, 300, 400, 50000):
            h.record(us / 1e6)
        snap = h.snapshot()
        assert snap["count"] == 5
        assert snap["p50_ms"] <= snap["p90_ms"] <= snap["p99_ms"]
        # conservative: the reported bound is >= the true percentile
        assert snap["p99_ms"] >= 50.0 * 0.99

    def test_bucket_bound_is_conservative(self):
        h = LatencyHistogram()
        h.record(0.001)
        # reported p50 is the bucket upper bound: >= sample, < 26% above
        assert 0.001 <= h.percentile(50) < 0.0013

    def test_outlier_lands_in_max(self):
        h = LatencyHistogram()
        h.record(120.0)  # beyond the last finite bucket
        assert h.percentile(99) == 120.0
