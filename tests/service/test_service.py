"""End-to-end tests for the analysis daemon.

Most tests talk to a real ``repro serve`` subprocess over a Unix socket
— the same deployment shape as production — so framing, admission
control, signal handling, and cache persistence are all exercised for
real.  The circuit breaker is tested in-process where failure injection
is easy.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
import uuid
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]
SRC = ROOT / "src"

sys.path.insert(0, str(SRC))

from repro.service import protocol  # noqa: E402
from repro.service.client import ServiceClient, ServiceError  # noqa: E402
from repro.service.server import AnalysisService, ServeConfig, _Breaker  # noqa: E402


def _unique_source() -> str:
    # distinct constant => distinct digest => cold at the daemon
    n = uuid.uuid4().int % 10**9
    return f"for (i = 0; i < n; i++) {{ a[i] = b[i] + {n}; }}"


class Daemon:
    """A ``repro serve`` subprocess bound to a Unix socket."""

    def __init__(self, *extra_args: str, cache_dir: str = None, sock: str = None):
        self.dir = tempfile.mkdtemp(prefix="reprosvc-")
        self.sock = sock or os.path.join(self.dir, "d.sock")
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
        env.pop("REPRO_CACHE_DIR", None)
        if cache_dir:
            env["REPRO_CACHE_DIR"] = cache_dir
        self.stderr_path = os.path.join(self.dir, "stderr.log")
        self._stderr = open(self.stderr_path, "w")
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--socket", self.sock, *extra_args],
            stdout=subprocess.PIPE,
            stderr=self._stderr,
            env=env,
            text=True,
        )
        line = self.proc.stdout.readline()
        if not line:
            self.proc.wait(timeout=10)
            raise RuntimeError(
                "daemon failed to start:\n" + Path(self.stderr_path).read_text()
            )
        self.ready = json.loads(line)
        assert self.ready.get("ready") is True
        assert self.ready.get("unix") == self.sock

    def client(self, timeout_s: float = 60.0) -> ServiceClient:
        return ServiceClient(unix_path=self.sock, timeout_s=timeout_s)

    def stop(self, expect_code: int = 0) -> int:
        if self.proc.poll() is None:
            try:
                with self.client(timeout_s=10.0) as c:
                    c.shutdown_server()
            except Exception:
                self.proc.terminate()
            try:
                self.proc.wait(timeout=45)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=10)
        code = self.proc.returncode
        self.cleanup()
        if expect_code is not None:
            assert code == expect_code, Path(self.stderr_path).read_text()
        return code

    def cleanup(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=10)
        self.proc.stdout.close()
        self._stderr.close()
        shutil.rmtree(self.dir, ignore_errors=True)


@pytest.fixture(scope="module")
def daemon():
    d = Daemon("--test-ops")
    yield d
    d.stop(expect_code=0)


# ---------------------------------------------------------------------------
# basic request/reply
# ---------------------------------------------------------------------------


class TestRequests:
    def test_ping(self, daemon):
        from repro import __version__

        with daemon.client() as c:
            reply = c.ping()
        assert reply["status"] == "ok"
        assert reply["version"] == __version__
        assert reply["pid"] == daemon.proc.pid

    def test_parallelize_and_warm_fast_path(self, daemon):
        src = _unique_source()
        with daemon.client() as c:
            cold = c.parallelize(src)
            warm = c.parallelize(src)
        assert cold["status"] == "ok"
        assert "cached" not in cold
        result = cold["results"][0]
        assert "#pragma omp parallel for" in result["annotated_c"]
        assert result["parallel_loops"]
        # second hit is answered from the pre-encoded frame cache on the
        # loop (no served_ms: cached frames carry no per-request fields)
        assert warm["status"] == "ok"
        assert warm["cached"] is True
        assert warm["results"][0]["annotated_c"] == result["annotated_c"]
        assert "served_ms" not in warm

    def test_analyze_reports_properties(self, daemon):
        src = (
            "for (i = 0; i < m; i++) { idx[i+1] = idx[i] + (flag[i] > 0); }\n"
            "for (j = 0; j < m; j++) { y[idx[j]] = y[idx[j]] + x[j]; }"
        )
        with daemon.client() as c:
            reply = c.analyze(src)
        assert reply["status"] == "ok"
        assert isinstance(reply["results"][0]["properties"], list)

    def test_batch_dedup_counts(self, daemon):
        uniq = [_unique_source() for _ in range(2)]
        batch = [uniq[i % 2] for i in range(8)]  # 8 programs, 2 unique
        with daemon.client() as c:
            before = c.metrics()["counters"]["batch_dedup_hits"]
            reply = c.parallelize(batch)
            after = c.metrics()["counters"]["batch_dedup_hits"]
        assert reply["status"] == "ok"
        assert len(reply["results"]) == 8
        # every duplicate is answered without re-analysis
        assert after - before == 6
        digests = {r["digest"] for r in reply["results"]}
        assert len(digests) == 2
        # duplicates share byte-identical rendered output
        by_digest = {}
        for r in reply["results"]:
            by_digest.setdefault(r["digest"], set()).add(r["annotated_c"])
        assert all(len(v) == 1 for v in by_digest.values())

    def test_bad_op_and_bad_payloads(self, daemon):
        with daemon.client() as c:
            r1 = c.request({"op": "frobnicate"}, check=False)
            r2 = c.request({"op": "analyze"}, check=False)
            r3 = c.request({"op": "analyze", "programs": []}, check=False)
        for r in (r1, r2, r3):
            assert r["status"] == "bad-request"
            assert r["code"] == 400

    def test_unparsable_program_is_a_422_not_a_crash(self, daemon):
        with daemon.client() as c:
            reply = c.request(
                {"op": "analyze", "source": "this is definitely not C"}, check=False
            )
            # and the daemon still answers afterwards
            assert c.ping()["status"] == "ok"
        assert reply["status"] == "error"
        assert reply["code"] == 422
        assert "error" in reply["results"][0]

    def test_mixed_batch_is_partial(self, daemon):
        good, bad = _unique_source(), "syntax }{ error"
        with daemon.client() as c:
            reply = c.parallelize([good, bad], check=False)
        assert reply["status"] == "partial"
        assert reply["code"] == 422
        ok, err = reply["results"]
        assert "annotated_c" in ok
        assert "error" in err

    def test_protocol_error_gets_400_reply(self, daemon):
        s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        s.settimeout(10.0)
        try:
            s.connect(daemon.sock)
            s.sendall((2**31).to_bytes(4, "big"))  # oversized length prefix
            reply = protocol.recv_frame(s)
        finally:
            s.close()
        assert reply["status"] == "bad-request"
        assert reply["code"] == 400

    def test_service_error_carries_reply(self, daemon):
        with daemon.client() as c:
            with pytest.raises(ServiceError) as ei:
                c.request({"op": "nope"})
        assert ei.value.reply["status"] == "bad-request"

    def test_metrics_shape(self, daemon):
        with daemon.client() as c:
            m = c.metrics()
        assert m["queue"]["capacity"] == 128
        assert m["counters"]["requests_total"] > 0
        assert "parallelize" in m["latency"]
        assert set(m["cache_tiers"]) >= {"analysis", "parallelize", "disk"}
        assert "workmeter" in m and "perfstats" in m


# ---------------------------------------------------------------------------
# deadlines and backpressure
# ---------------------------------------------------------------------------


class TestAdmission:
    def test_deadline_expired_in_queue_fast_fails(self, daemon):
        # Occupy both queue consumers with slow jobs, then submit a
        # short-deadline job: it must come back status=timeout when a
        # worker picks it up past its deadline — not compute anyway.
        def slow():
            with daemon.client() as c:
                c.request(
                    {"op": "analyze", "source": _unique_source(), "__test_sleep_ms": 700},
                )

        blockers = [threading.Thread(target=slow) for _ in range(2)]
        for t in blockers:
            t.start()
        time.sleep(0.2)  # let both workers dequeue the slow jobs
        with daemon.client() as c:
            reply = c.request(
                {"op": "analyze", "source": _unique_source(), "deadline_ms": 100},
                check=False,
            )
        for t in blockers:
            t.join()
        assert reply["status"] == "timeout"
        assert reply["code"] == 504
        assert reply["queued_ms"] >= 100

    def test_backpressure_is_a_fast_reply_not_a_hang(self):
        d = Daemon("--test-ops", "--queue-size", "1")
        try:
            # 2 workers + 1 queue slot: three slow jobs saturate admission.
            # Staggered (and retried) so each blocker is dequeued before
            # the next arrives — simultaneous sends race the workers and
            # would bounce off the still-full queue themselves.
            def slow(delay_s):
                time.sleep(delay_s)
                with d.client() as c:
                    while True:
                        r = c.request(
                            {
                                "op": "analyze",
                                "source": _unique_source(),
                                "__test_sleep_ms": 1000,
                            },
                            check=False,
                        )
                        if r["status"] != "overloaded":
                            return
                        time.sleep(0.05)

            blockers = [
                threading.Thread(target=slow, args=(i * 0.2,)) for i in range(3)
            ]
            for t in blockers:
                t.start()
            time.sleep(0.7)  # both workers + the queue slot now hold blockers
            rejected = []
            t0 = time.perf_counter()
            with d.client() as c:
                for _ in range(3):
                    rejected.append(
                        c.request(
                            {"op": "analyze", "source": _unique_source()}, check=False
                        )
                    )
                elapsed = time.perf_counter() - t0
                m = c.metrics()
            for t in blockers:
                t.join()
            assert [r["status"] for r in rejected] == ["overloaded"] * 3
            assert all(r["code"] == 503 for r in rejected)
            assert rejected[0]["queue_capacity"] == 1
            assert elapsed < 1.0  # fast-fail, did not wait for the slow jobs
            assert m["counters"]["overload_rejections"] >= 3
        finally:
            d.stop(expect_code=0)

    def test_ping_bypasses_saturated_queue(self, daemon):
        def slow():
            with daemon.client() as c:
                c.request(
                    {"op": "analyze", "source": _unique_source(), "__test_sleep_ms": 500},
                )

        t = threading.Thread(target=slow)
        t.start()
        time.sleep(0.1)
        t0 = time.perf_counter()
        with daemon.client() as c:
            assert c.ping()["status"] == "ok"
        assert time.perf_counter() - t0 < 0.4  # inline op, never queued
        t.join()


# ---------------------------------------------------------------------------
# shutdown and restart
# ---------------------------------------------------------------------------


def _shm_entries():
    try:
        return set(os.listdir("/dev/shm"))
    except OSError:
        return set()


class TestLifecycle:
    def test_sigterm_clean_shutdown_no_orphans(self):
        shm_before = _shm_entries()
        d = Daemon()
        try:
            with d.client(timeout_s=180.0) as c:
                # spin up the execution worker pool so shutdown has real
                # shared-memory segments to reclaim
                reply = c.execute("IS", backend="auto", scale="small")
                assert reply["status"] in ("ok", "degraded")
            d.proc.send_signal(signal.SIGTERM)
            code = d.proc.wait(timeout=60)
            assert code == 0, Path(d.stderr_path).read_text()
            assert not os.path.exists(d.sock)  # socket file removed
            leaked = _shm_entries() - shm_before
            assert not leaked, f"orphan /dev/shm segments: {leaked}"
        finally:
            d.cleanup()

    def test_shutdown_op_exits_zero_and_unlinks_socket(self):
        d = Daemon()
        try:
            with d.client() as c:
                assert c.shutdown_server()["status"] == "ok"
            assert d.proc.wait(timeout=45) == 0
            assert not os.path.exists(d.sock)
        finally:
            d.cleanup()

    def test_sigkill_then_restart_reuses_sharded_cache(self):
        cache_dir = tempfile.mkdtemp(prefix="reprocache-")
        src = _unique_source()
        sock = None
        try:
            d1 = Daemon(cache_dir=cache_dir)
            sock = d1.sock
            try:
                with d1.client() as c:
                    assert c.parallelize(src)["status"] == "ok"
                    writes = c.metrics()["cache_tiers"]["disk"]["writes"]
                    assert writes >= 1
            finally:
                d1.proc.kill()  # simulated crash: no drain, no cleanup
                d1.proc.wait(timeout=10)
            # the crashed daemon may leave its socket file; a fresh daemon
            # on the same path and same cache dir must start and serve warm
            d2 = Daemon(cache_dir=cache_dir, sock=sock)
            try:
                with d2.client() as c:
                    reply = c.parallelize(src)
                    assert reply["status"] == "ok"
                    assert "#pragma omp" in reply["results"][0]["annotated_c"]
                    disk = c.metrics()["cache_tiers"]["disk"]
                    # fresh process, empty memory tiers: served from disk
                    assert disk["hits"] >= 1
            finally:
                d2.stop(expect_code=0)
            d1.cleanup()
        finally:
            shutil.rmtree(cache_dir, ignore_errors=True)


# ---------------------------------------------------------------------------
# circuit breaker (in-process: failure injection is easy here)
# ---------------------------------------------------------------------------


class TestBreaker:
    def test_breaker_unit(self, monkeypatch):
        clock = [0.0]
        monkeypatch.setattr(time, "monotonic", lambda: clock[0])
        b = _Breaker(threshold=2, cooldown_s=10.0)
        assert not b.open
        b.record_failure()
        assert not b.open
        b.record_failure()
        assert b.open
        clock[0] = 5.0
        assert b.open  # still cooling down
        clock[0] = 10.0
        assert not b.open  # half-open probe allowed
        b.record_failure()  # probe failed: re-opens at threshold
        assert b.open
        clock[0] = 20.0
        assert not b.open
        b.record_success()
        assert not b.open and b.failures == 0

    def test_execute_degrades_to_analysis_under_fault_storm(self, monkeypatch):
        import repro.runtime.simulate as simulate

        def boom(*a, **k):
            raise RuntimeError("injected pool failure")

        monkeypatch.setattr(simulate, "measure_kernel", boom)
        svc = AnalysisService(ServeConfig(breaker_threshold=2, breaker_cooldown_s=300.0))
        try:
            req = {"op": "execute", "benchmark": "IS", "backend": "auto", "scale": "small"}
            for _ in range(2):
                with pytest.raises(RuntimeError, match="injected"):
                    svc._process(dict(req))
            reply = svc._process(dict(req))
            assert reply["status"] == "degraded"
            assert reply["code"] == 203
            assert svc.stats.get("degraded_executes") == 1
            # degraded reply still carries a usable analysis
            assert "annotated_c" in reply["results"][0]
        finally:
            svc._compute.shutdown(wait=False)
