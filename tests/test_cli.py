"""CLI tests."""

import pytest

from repro.cli import main


AMG = """
irownnz = 0;
for (i = 0; i < num_rows; i++){
    if (A_i[i+1] - A_i[i] > 0)
        A_rownnz[irownnz++] = i;
}
for (i = 0; i < num_rownnz; i++){
    m = A_rownnz[i];
    y_data[m] = y_data[m] + x_data[m];
}
"""


@pytest.fixture()
def amg_file(tmp_path):
    f = tmp_path / "amg.c"
    f.write_text(AMG)
    return str(f)


def test_parallelize_command(amg_file, capsys):
    assert main(["parallelize", amg_file]) == 0
    out = capsys.readouterr().out
    assert "#pragma omp parallel for" in out
    assert "irownnz_max" in out


def test_parallelize_with_schedule(amg_file, capsys):
    assert main(["parallelize", amg_file, "--schedule", "dynamic", "--chunk", "8"]) == 0
    out = capsys.readouterr().out
    assert "schedule(dynamic, 8)" in out


def test_classical_pipeline_no_pragma(amg_file, capsys):
    assert main(["parallelize", amg_file, "--pipeline", "classical"]) == 0
    out = capsys.readouterr().out
    assert "#pragma" not in out


def test_report_command(amg_file, capsys):
    assert main(["report", amg_file]) == 0
    out = capsys.readouterr().out
    assert "PARALLEL" in out and "serial" in out


def test_properties_command(amg_file, capsys):
    assert main(["properties", amg_file]) == 0
    out = capsys.readouterr().out
    assert "A_rownnz" in out and "SMA" in out


def test_properties_none_found(tmp_path, capsys):
    f = tmp_path / "x.c"
    f.write_text("for (i = 0; i < n; i++) { a[i] = 0; }")
    assert main(["properties", str(f)]) == 0
    assert "no subscript-array properties" in capsys.readouterr().out


def test_stdin_input(monkeypatch, capsys):
    import io

    monkeypatch.setattr("sys.stdin", io.StringIO("for (i = 0; i < n; i++) { a[i] = b[i]; }"))
    assert main(["parallelize", "-"]) == 0
    assert "#pragma omp parallel for" in capsys.readouterr().out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["bogus"])


def test_multi_function_file_is_inlined(tmp_path, capsys):
    src = """
    void fill(int b[], int xs[], int n) {
        int m = 0;
        int i;
        for (i = 0; i < n; i++){
            if (xs[i] > 0) b[m++] = i;
        }
    }
    void main() {
        fill(b, xs, n);
        for (q = 0; q < nw; q++){
            y[b[q]] = q;
        }
    }
    """
    f = tmp_path / "split.c"
    f.write_text(src)
    assert main(["report", str(f)]) == 0
    out = capsys.readouterr().out
    assert "PARALLEL" in out
    assert "m_max" in out or "SMA" in out


def test_explain_command(amg_file, capsys):
    assert main(["explain", amg_file]) == 0
    out = capsys.readouterr().out
    assert "Phase-1 SVD" in out
    assert "dependence graph" in out
