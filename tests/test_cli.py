"""CLI tests."""

import pytest

from repro.cli import main


AMG = """
irownnz = 0;
for (i = 0; i < num_rows; i++){
    if (A_i[i+1] - A_i[i] > 0)
        A_rownnz[irownnz++] = i;
}
for (i = 0; i < num_rownnz; i++){
    m = A_rownnz[i];
    y_data[m] = y_data[m] + x_data[m];
}
"""


@pytest.fixture()
def amg_file(tmp_path):
    f = tmp_path / "amg.c"
    f.write_text(AMG)
    return str(f)


def test_parallelize_command(amg_file, capsys):
    assert main(["parallelize", amg_file]) == 0
    out = capsys.readouterr().out
    assert "#pragma omp parallel for" in out
    assert "irownnz_max" in out


def test_parallelize_with_schedule(amg_file, capsys):
    assert main(["parallelize", amg_file, "--schedule", "dynamic", "--chunk", "8"]) == 0
    out = capsys.readouterr().out
    assert "schedule(dynamic, 8)" in out


def test_classical_pipeline_no_pragma(amg_file, capsys):
    assert main(["parallelize", amg_file, "--pipeline", "classical"]) == 0
    out = capsys.readouterr().out
    assert "#pragma" not in out


def test_report_command(amg_file, capsys):
    assert main(["report", amg_file]) == 0
    out = capsys.readouterr().out
    assert "PARALLEL" in out and "serial" in out


def test_properties_command(amg_file, capsys):
    assert main(["properties", amg_file]) == 0
    out = capsys.readouterr().out
    assert "A_rownnz" in out and "SMA" in out


def test_properties_none_found(tmp_path, capsys):
    f = tmp_path / "x.c"
    f.write_text("for (i = 0; i < n; i++) { a[i] = 0; }")
    assert main(["properties", str(f)]) == 0
    assert "no subscript-array properties" in capsys.readouterr().out


def test_stdin_input(monkeypatch, capsys):
    import io

    monkeypatch.setattr("sys.stdin", io.StringIO("for (i = 0; i < n; i++) { a[i] = b[i]; }"))
    assert main(["parallelize", "-"]) == 0
    assert "#pragma omp parallel for" in capsys.readouterr().out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["bogus"])


def test_multi_function_file_is_inlined(tmp_path, capsys):
    src = """
    void fill(int b[], int xs[], int n) {
        int m = 0;
        int i;
        for (i = 0; i < n; i++){
            if (xs[i] > 0) b[m++] = i;
        }
    }
    void main() {
        fill(b, xs, n);
        for (q = 0; q < nw; q++){
            y[b[q]] = q;
        }
    }
    """
    f = tmp_path / "split.c"
    f.write_text(src)
    assert main(["report", str(f)]) == 0
    out = capsys.readouterr().out
    assert "PARALLEL" in out
    assert "m_max" in out or "SMA" in out


def test_explain_command(amg_file, capsys):
    assert main(["explain", amg_file]) == 0
    out = capsys.readouterr().out
    assert "Phase-1 SVD" in out
    assert "dependence graph" in out


# ---------------------------------------------------------------------------
# hardening: user errors are one-line messages on stderr, exit 2
# ---------------------------------------------------------------------------


def test_missing_file_exits_2_no_traceback(capsys):
    assert main(["report", "/no/such/file.c"]) == 2
    cap = capsys.readouterr()
    err_lines = [l for l in cap.err.splitlines() if l]
    assert len(err_lines) == 1 and err_lines[0].startswith("error: ")
    assert "Traceback" not in cap.err


def test_unreadable_file_exits_2(tmp_path, capsys):
    import os

    f = tmp_path / "locked.c"
    f.write_text("for (i = 0; i < n; i++) a[i] = 0;")
    os.chmod(f, 0)
    try:
        if os.access(f, os.R_OK):  # running as root: chmod 0 is not enough
            pytest.skip("cannot create an unreadable file in this environment")
        assert main(["report", str(f)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
    finally:
        os.chmod(f, 0o644)


def test_parse_error_exits_2(tmp_path, capsys):
    f = tmp_path / "bad.c"
    f.write_text("for (i = 0; i < n; i++ { a[i] = 0; }")
    assert main(["report", str(f)]) == 2
    cap = capsys.readouterr()
    assert cap.err.startswith("error: ")
    assert "Traceback" not in cap.err


def test_deeply_nested_program_is_a_parse_error(tmp_path, capsys):
    depth = 50_000
    f = tmp_path / "deep.c"
    f.write_text("x = " + "(" * depth + "1" + ")" * depth + ";")
    assert main(["report", str(f)]) == 2
    err = capsys.readouterr().err
    assert "error:" in err and "too deeply nested" in err


# ---------------------------------------------------------------------------
# --strict and budget knobs
# ---------------------------------------------------------------------------


def test_strict_passes_on_clean_program(tmp_path, capsys):
    f = tmp_path / "clean.c"
    f.write_text("for (cs_i = 0; cs_i < cs_n; cs_i++) cs_a[cs_i] = cs_i;")
    assert main(["report", str(f), "--strict"]) == 0


def test_strict_fails_on_diagnostics(tmp_path, capsys):
    f = tmp_path / "brk.c"
    f.write_text(
        "for (cw_i = 0; cw_i < cw_n; cw_i++) {\n"
        "  cw_a[cw_i] = cw_i;\n"
        "  if (cw_a[cw_i] > 3) break;\n"
        "}\n"
    )
    assert main(["report", str(f), "--strict"]) == 1
    cap = capsys.readouterr()
    assert "diagnostic(s):" in cap.err
    assert "unsupported-pattern" in cap.err
    # without --strict the same run exits 0 (informational diagnostic only)
    assert main(["report", str(f)]) == 0


def test_budget_flag_produces_diagnostic_and_serial(tmp_path, capsys):
    # fresh variable names: the memoized simplifier only charges budgets on
    # cache misses, so a source warmed by other tests would sail through
    f = tmp_path / "budgeted.c"
    f.write_text(
        "cb_z = 0;\n"
        "for (cb_i = 0; cb_i < cb_n; cb_i++){\n"
        "    if (cb_d[cb_i+1] - cb_d[cb_i] > 0)\n"
        "        cb_w[cb_z++] = cb_i;\n"
        "}\n"
        "for (cb_q = 0; cb_q < cb_m; cb_q++){\n"
        "    cb_y[cb_w[cb_q]] = cb_y[cb_w[cb_q]] + 1;\n"
        "}\n"
    )
    assert main(["report", str(f), "--max-expr-nodes", "2"]) == 0
    out = capsys.readouterr().out
    assert "budget-exceeded" in out
    assert "PARALLEL" not in out
    # and --strict turns it into a nonzero exit
    assert main(["report", str(f), "--max-expr-nodes", "2", "--strict"]) == 1
    assert "budget-exceeded" in capsys.readouterr().err


def test_deadline_flag_accepted(amg_file, capsys):
    # generous deadline: same decisions as the unbudgeted run
    assert main(["report", amg_file, "--deadline-ms", "60000"]) == 0
    assert "PARALLEL" in capsys.readouterr().out


def test_version_flag(capsys):
    from repro import __version__

    with pytest.raises(SystemExit) as ei:
        main(["--version"])
    assert ei.value.code == 0
    assert f"repro {__version__}" in capsys.readouterr().out


def test_ping_requires_endpoint(capsys):
    assert main(["ping"]) == 2
    assert "need --port or --socket" in capsys.readouterr().err


def test_ping_unreachable_daemon_exits_1(tmp_path, capsys):
    assert main(["ping", "--socket", str(tmp_path / "nope.sock")]) == 1
    assert "cannot reach daemon" in capsys.readouterr().err


def test_client_requires_endpoint(capsys):
    assert main(["client", "metrics"]) == 2
    assert "need --port or --socket" in capsys.readouterr().err


def test_client_analyze_requires_sources(tmp_path, capsys):
    assert main(["client", "analyze", "--socket", str(tmp_path / "x.sock")]) == 2
    assert "at least one source" in capsys.readouterr().err


def test_ping_round_trip_against_live_daemon(tmp_path, capsys):
    import json
    import os
    import subprocess
    import sys as _sys

    sock = str(tmp_path / "cli.sock")
    src_dir = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [_sys.executable, "-m", "repro", "serve", "--socket", sock],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, env=env, text=True,
    )
    try:
        ready = json.loads(proc.stdout.readline())
        assert ready["ready"] is True
        assert main(["ping", "--socket", sock]) == 0
        out = capsys.readouterr().out
        assert "ok" in out and str(ready["pid"]) in out
        assert main(["client", "shutdown", "--socket", sock]) == 0
        capsys.readouterr()
        assert proc.wait(timeout=45) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
        proc.stdout.close()
