"""End-to-end soundness: every loop the NewAlgo pipeline parallelizes must
be free of cross-iteration conflicts when executed on a real (small) input.

This closes the loop between the compile-time proof (monotonicity ⇒ no
dependence) and actual behavior — the strongest validation the repository
offers for the paper's central claim.
"""

import numpy as np
import pytest

from repro.analysis import AnalysisConfig
from repro.benchmarks import all_benchmarks, get_benchmark
from repro.lang.astnodes import For
from repro.parallelizer import parallelize
from repro.runtime.racecheck import check_loop_races


def deep_env(env):
    return {k: (v.copy() if isinstance(v, np.ndarray) else v) for k, v in env.items()}


def parallel_top_loops(result):
    """Top-level loops the pipeline marked parallel, in program order."""
    out = []
    for stmt in result.program.stmts:
        if isinstance(stmt, For):
            d = result.decisions.get(stmt.loop_id or "")
            if d is not None and d.parallel:
                out.append(stmt)
    return out


@pytest.mark.parametrize(
    "name",
    [b.name for b in all_benchmarks()],
)
def test_newalgo_parallel_loops_are_race_free(name):
    bench = get_benchmark(name)
    result = parallelize(bench.source, AnalysisConfig.new_algorithm())
    loops = parallel_top_loops(result)
    if not loops:
        pytest.skip("no top-level parallel loop under NewAlgo")
    for loop in loops:
        rep = check_loop_races(result.program, loop, deep_env(bench.small_env()))
        assert rep.clean, f"{name}: " + "; ".join(str(c) for c in rep.conflicts)
        assert rep.iterations > 0


def test_is_histogram_would_race():
    """Negative control: the loop every pipeline REFUSES to parallelize
    (IS's histogram) does exhibit real races."""
    bench = get_benchmark("IS")
    result = parallelize(bench.source, AnalysisConfig.new_algorithm())
    prog = result.program
    # the histogram loop is the second loop inside the it-loop's body
    it_loop = next(s for s in prog.stmts if isinstance(s, For))
    inner = [s for s in it_loop.body.walk() if isinstance(s, For)]
    hist = inner[1]
    d = result.decisions.get(hist.loop_id or "")
    assert d is not None and not d.parallel
    # run the histogram body standalone to confirm actual conflicts
    from repro.lang.astnodes import Program

    env = deep_env(bench.small_env())
    standalone = Program([hist])
    rep = check_loop_races(standalone, hist, env)
    assert not rep.clean


def test_incomplete_cholesky_never_parallel():
    bench = get_benchmark("Incomplete-Cholesky")
    for cfg in (
        AnalysisConfig.classical(),
        AnalysisConfig.base_algorithm(),
        AnalysisConfig.new_algorithm(),
    ):
        result = parallelize(bench.source, cfg)
        assert not result.parallel_loops
