"""Per-benchmark validation: sources compile, decisions match Figure 17,
kernels execute correctly against their NumPy references."""

import numpy as np
import pytest

from repro.benchmarks import all_benchmarks, get_benchmark
from repro.benchmarks import (
    amgmk,
    cg,
    cholmod,
    fdtd2d,
    gramschmidt,
    heat3d,
    mg,
    sddmm,
    syrk,
    ua_transf,
)
from repro.experiments.harness import PIPELINES, _compile
from repro.lang.cparser import parse_program
from repro.runtime.interp import run_program
from repro.runtime.simulate import plan_from_decisions

ALL = all_benchmarks()


def deep_env(env):
    """Deep-copy an interpreter environment (arrays are mutated in place)."""
    return {k: (v.copy() if isinstance(v, np.ndarray) else v) for k, v in env.items()}


@pytest.mark.parametrize("bench", ALL, ids=lambda b: b.name)
def test_source_parses(bench):
    prog = parse_program(bench.source)
    assert prog.stmts


@pytest.mark.parametrize("bench", ALL, ids=lambda b: b.name)
@pytest.mark.parametrize("pipeline", list(PIPELINES))
def test_parallelization_levels_match_figure17(bench, pipeline):
    """The qualitative Figure-17 outcome per benchmark and pipeline."""
    result = _compile(bench.name, pipeline)
    perf = bench.perf_model(bench.default_dataset)
    plan = plan_from_decisions(perf, result)
    main = plan.per_component.get(bench.main_component)
    level = main.level if main else "serial"
    assert level == bench.expected_levels[pipeline]


@pytest.mark.parametrize("bench", ALL, ids=lambda b: b.name)
def test_perf_model_sanity(bench):
    for ds in bench.datasets:
        perf = bench.perf_model(ds)
        assert perf.total_ops() > 0
        assert perf.serial_time_target > 0
        assert perf.c_op > 0
        for comp in perf.components:
            assert comp.work.min() >= 0
            assert 0.0 <= comp.contention <= 1.0


@pytest.mark.parametrize("bench", ALL, ids=lambda b: b.name)
def test_small_env_executes(bench):
    env = bench.small_env()
    out = run_program(parse_program(bench.source), deep_env(env))
    assert out is not None


def test_amgmk_matches_reference():
    env = amgmk.small_env()
    out = run_program(parse_program(amgmk.SOURCE), deep_env(env))
    np.testing.assert_allclose(out["y_data"], amgmk.reference(env), rtol=1e-12)


def test_sddmm_matches_reference():
    env = sddmm.small_env()
    out = run_program(parse_program(sddmm.SOURCE), deep_env(env))
    np.testing.assert_allclose(out["p"], sddmm.reference(env), rtol=1e-12)


def test_ua_transf_matches_reference():
    env = ua_transf.small_env()
    out = run_program(parse_program(ua_transf.SOURCE), deep_env(env))
    np.testing.assert_allclose(out["tx"], ua_transf.reference(env), rtol=1e-12)


def test_ua_idel_fill_matches_paper_figure12():
    env = ua_transf.small_env()
    out = run_program(parse_program(ua_transf.SOURCE), deep_env(env))
    idel = out["idel"]
    # strict Range-Monotonicity w.r.t. dim 0: ranges [125*iel, 125*iel+124]
    for iel in range(env["LELT"]):
        vals = idel[iel].reshape(-1)
        assert vals.min() == 125 * iel
        assert vals.max() == 125 * iel + 124


def test_cholmod_matches_reference():
    env = cholmod.small_env()
    out = run_program(parse_program(cholmod.SOURCE), deep_env(env))
    np.testing.assert_allclose(out["diagL"], cholmod.reference(env), rtol=1e-12)


def test_cholmod_xsup_is_strictly_monotonic():
    env = cholmod.small_env()
    out = run_program(parse_program(cholmod.SOURCE), deep_env(env))
    assert np.all(np.diff(out["xsup"]) > 0)


def test_cg_matches_reference():
    env = cg.small_env()
    out = run_program(parse_program(cg.SOURCE), deep_env(env))
    np.testing.assert_allclose(out["w"], cg.reference(env), rtol=1e-12)


def test_heat3d_matches_reference():
    env = heat3d.small_env()
    out = run_program(parse_program(heat3d.SOURCE), deep_env(env))
    np.testing.assert_allclose(out["A"], heat3d.reference(env), rtol=1e-9)


def test_fdtd2d_matches_reference():
    env = fdtd2d.small_env()
    out = run_program(parse_program(fdtd2d.SOURCE), deep_env(env))
    ref = fdtd2d.reference(env)
    for key in ("ex", "ey", "hz"):
        np.testing.assert_allclose(out[key], ref[key], rtol=1e-9)


def test_gramschmidt_matches_reference():
    env = gramschmidt.small_env()
    out = run_program(parse_program(gramschmidt.SOURCE), deep_env(env))
    ref = gramschmidt.reference(env)
    np.testing.assert_allclose(out["Q"], ref["Q"], rtol=1e-9)
    np.testing.assert_allclose(out["R"], ref["R"], rtol=1e-9, atol=1e-12)


def test_syrk_matches_reference():
    env = syrk.small_env()
    out = run_program(parse_program(syrk.SOURCE), deep_env(env))
    np.testing.assert_allclose(out["C"], syrk.reference(env), rtol=1e-9)


def test_mg_matches_reference():
    env = mg.small_env()
    out = run_program(parse_program(mg.SOURCE), deep_env(env))
    np.testing.assert_allclose(out["u"], mg.reference(env), rtol=1e-9)


def test_is_histogram_matches_reference():
    from repro.benchmarks import is_bench

    env = is_bench.small_env()
    out = run_program(parse_program(is_bench.SOURCE), deep_env(env))
    np.testing.assert_array_equal(out["keyden"], is_bench.reference(env))


def test_registry():
    assert len(ALL) == 12
    assert get_benchmark("AMGmk").name == "AMGmk"
    with pytest.raises(KeyError):
        get_benchmark("nope")


def test_serial_times_cover_table1():
    table = {(b.name, ds): b.perf_model(ds).serial_time_target for b in ALL for ds in b.datasets}
    assert table[("AMGmk", "MATRIX5")] == 28.66
    assert table[("SDDMM", "af_shell1")] == 0.755
    assert table[("UA(transf)", "D")] == 874.22
    assert table[("Incomplete-Cholesky", "crankseg_1")] == 27.59
