"""IR/SVD invariant linter (``AnalysisConfig.verify_ir``)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis import AnalysisConfig, analyze_program
from repro.analysis.properties import ArrayProperty, MonoKind
from repro.ir.ranges import SymRange
from repro.ir.symbols import IntLit, Sym
from repro.verify import LintError, lint_phase1, lint_phase2, lint_property
from repro.verify.certificate import MonoStep

KERNEL = """
num = 0;
for (i = 0; i < n; i++) {
  if (d[i] > 0) {
    b[num] = i;
    num = num + 1;
  }
}
"""


def _prop(**kw):
    base = dict(array="b", kind=MonoKind.SMA, dim=0)
    base.update(kw)
    return ArrayProperty(**base)


def test_analysis_passes_lint_with_verify_ir_on():
    config = dataclasses.replace(AnalysisConfig.new_algorithm(), verify_ir=True)
    res = analyze_program(KERNEL, config)
    assert not res.diagnostics
    # the linter also accepts the real phase results when invoked directly
    for loop_id, p1 in res.phase1_results.items():
        lint_phase1(p1)
        p2 = res.loop_results.get(loop_id)
        if p2 is not None:
            lint_phase2(p1, p2)
    for prop in res.properties.all_properties():
        lint_property(prop)


def test_property_kind_none_rejected():
    with pytest.raises(LintError):
        lint_property(_prop(kind=MonoKind.NONE))


def test_property_negative_dim_rejected():
    with pytest.raises(LintError):
        lint_property(_prop(dim=-1))


def test_property_empty_constant_region_rejected():
    with pytest.raises(LintError):
        lint_property(_prop(region=SymRange(IntLit(5), IntLit(2))))


def test_property_counter_wiring_mismatch_rejected():
    # counter_max without counter_var (and vice versa) is inconsistent
    with pytest.raises(LintError):
        lint_property(_prop(counter_max=Sym("num_max")))
    with pytest.raises(LintError):
        lint_property(_prop(counter_var="num"))
    with pytest.raises(LintError):
        lint_property(_prop(counter_var="num", counter_max=Sym("other_max")))


def test_property_evidence_array_mismatch_rejected():
    ev = MonoStep(array="c", lemma="sra", kind=MonoKind.SMA, dim=0, source_loop="L0")
    with pytest.raises(LintError):
        lint_property(_prop(evidence=ev))


def test_property_evidence_weaker_kind_rejected():
    # a resolved property may weaken the derived kind but never strengthen it
    ev = MonoStep(array="b", lemma="sra", kind=MonoKind.MA, dim=0, source_loop="L0")
    with pytest.raises(LintError):
        lint_property(_prop(kind=MonoKind.SMA, evidence=ev))


def test_lint_failure_surfaces_as_diagnostic_not_crash(monkeypatch):
    """A lint violation inside analysis trips the per-nest fault boundary:
    diagnostic + serial nest, never an uncaught exception."""
    import repro.analysis.analyzer as analyzer_mod

    def boom(*a, **k):
        raise LintError("injected")

    monkeypatch.setattr(analyzer_mod, "lint_phase1", boom)
    config = dataclasses.replace(AnalysisConfig.new_algorithm(), verify_ir=True)
    # fresh source text: an identical (source, config) pair would be served
    # from the result cache and never reach the patched linter
    res = analyze_program(KERNEL + "// fault injection\n", config)
    assert any(d.kind == "internal-error" for d in res.diagnostics)


def test_verify_ir_off_skips_linter(monkeypatch):
    import repro.analysis.analyzer as analyzer_mod

    def boom(*a, **k):  # pragma: no cover - must never run
        raise LintError("injected")

    monkeypatch.setattr(analyzer_mod, "lint_phase1", boom)
    config = dataclasses.replace(AnalysisConfig.new_algorithm(), verify_ir=False)
    res = analyze_program(KERNEL + "// linter off\n", config)
    assert not any(d.kind == "internal-error" for d in res.diagnostics)


# -- lowering lint (REPRO_VERIFY_LOWERING) ----------------------------------


def _compiled(src: str, parallel: bool = False):
    from repro.analysis import AnalysisConfig
    from repro.parallelizer import parallelize
    from repro.runtime.compile import compile_program

    res = parallelize(src, AnalysisConfig.new_algorithm())
    par = {lid for lid, d in res.decisions.items() if d.parallel}
    return compile_program(
        res.program, res.decisions, parallel=parallel, parallel_loops=par
    )


def test_lint_lowering_accepts_real_compile():
    from repro.verify.lint import lint_lowering

    cp = _compiled("for (i = 0; i < n; i++) a[i] = b[i] + 1;", parallel=True)
    lint_lowering(cp)  # must not raise


def test_lint_lowering_rejects_tampered_chunk_meta():
    from repro.verify.lint import lint_lowering

    cp = _compiled("for (i = 0; i < n; i++) a[i] = b[i] + 1;", parallel=True)
    assert cp.chunk_meta, "expected a parallel chunk dispatch"
    key = next(iter(cp.chunk_meta))
    cp.chunk_meta[key]["rw"] = ["ghost"]  # array the loop never touches
    with pytest.raises(LintError, match="ghost"):
        lint_lowering(cp)


def test_lint_lowering_rejects_unlisted_snapshot_free():
    from repro.verify.lint import lint_lowering

    cp = _compiled("for (i = 0; i < n; i++) a[i] = b[i] + 1;", parallel=True)
    key = next(iter(cp.chunk_meta))
    # snapshot-free must be a subset of the rw overlap set
    cp.chunk_meta[key]["snapshot_free"] = ["a"]
    with pytest.raises(LintError, match="snapshot"):
        lint_lowering(cp)


def test_compile_program_runs_lint_under_env_gate(monkeypatch):
    from repro.runtime import compile as rcompile

    monkeypatch.setenv("REPRO_VERIFY_LOWERING", "1")
    cp = _compiled("for (i = 0; i < n; i++) a[i] = b[i] * 2;", parallel=True)
    assert cp.backend == "compiled"  # lint ran inside compile_program, clean
    monkeypatch.setenv("REPRO_VERIFY_LOWERING", "0")
    cp2 = _compiled("for (i = 0; i < n; i++) a[i] = b[i] * 2;", parallel=True)
    assert cp2.backend == "compiled"
