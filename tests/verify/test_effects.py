"""Symbolic effect summaries: every subscript shape classifies honestly.

Each test parses one mini-C loop and checks the derived per-iteration
footprint — kind, injectivity, stride — plus the helper predicates the
chunk-race classifier builds on (span disjointness, trip-count proofs).
"""

from __future__ import annotations

from repro.analysis.normalize import normalize_program
from repro.analysis.properties import ArrayProperty, MonoKind, PropertyStore
from repro.ir.ranges import SymRange
from repro.ir.symbols import IntLit, Sym
from repro.lang.astnodes import For
from repro.lang.cparser import parse_program
from repro.verify.effects import (
    AFFINE,
    INDIRECT,
    INVARIANT,
    OPAQUE,
    WINDOW,
    format_effects,
    loop_effects,
    spans_disjoint,
    trips_at_least_two,
)


def _loop(src: str, k: int = 0) -> For:
    prog = normalize_program(parse_program(src))
    return [s for s in prog.stmts if isinstance(s, For)][k]


def _props(array: str, kind: MonoKind, value_range=None) -> PropertyStore:
    store = PropertyStore()
    store.record(ArrayProperty(array=array, kind=kind, value_range=value_range))
    return store


def test_affine_stride_one_write():
    eff = loop_effects(_loop("for (i = 0; i < n; i++) a[i] = i;"))
    assert eff.eligible and eff.index == "i"
    assert eff.index_span is not None
    [w] = eff.arrays["a"].writes
    assert w.kind == AFFINE and w.injective and w.coeff == 1
    assert eff.written_arrays() == ["a"]


def test_affine_stride_two_write():
    eff = loop_effects(_loop("for (i = 0; i < n; i++) a[2*i] = i;"))
    [w] = eff.arrays["a"].writes
    assert w.kind == AFFINE and w.injective and w.coeff == 2


def test_loop_invariant_write():
    eff = loop_effects(_loop("for (i = 0; i < n; i++) a[0] = i;"))
    [w] = eff.arrays["a"].writes
    assert w.kind == INVARIANT and not w.injective
    assert w.span is not None  # a single-point span


def test_non_affine_subscript_is_opaque():
    eff = loop_effects(_loop("for (i = 0; i < n; i++) a[i * i] = i;"))
    [w] = eff.arrays["a"].writes
    assert w.kind == OPAQUE and not w.injective


def test_indirection_without_property_is_opaque():
    eff = loop_effects(_loop("for (i = 0; i < n; i++) y[idx[i]] = i;"))
    [w] = eff.arrays["y"].writes
    assert w.kind == OPAQUE and not w.injective
    assert "idx" in w.detail


def test_indirection_with_sma_property_is_injective():
    props = _props("idx", MonoKind.SMA, SymRange(IntLit(0), Sym("m")))
    eff = loop_effects(
        _loop("for (i = 0; i < n; i++) y[idx[i]] = x[i];"), properties=props
    )
    [w] = eff.arrays["y"].writes
    assert w.kind == INDIRECT and w.injective
    assert w.via == "idx" and w.via_kind is MonoKind.SMA
    assert w.pos_coeff == 1
    assert w.span is not None  # inherited from the property's value range


def test_indirection_with_ma_property_is_not_injective():
    props = _props("idx", MonoKind.MA)
    eff = loop_effects(
        _loop("for (i = 0; i < n; i++) y[idx[i]] = x[i];"), properties=props
    )
    [w] = eff.arrays["y"].writes
    assert w.kind == INDIRECT and not w.injective


def test_monotonic_window_is_injective():
    src = (
        "for (i = 0; i < n; i++) {\n"
        "  for (j = p[i]; j < p[i + 1]; j++) {\n"
        "    a[j] = a[j] + x[i];\n"
        "  }\n"
        "}"
    )
    props = _props("p", MonoKind.MA)  # MA suffices: windows stay disjoint
    eff = loop_effects(_loop(src), properties=props)
    [w] = eff.arrays["a"].writes
    assert w.kind == WINDOW and w.injective and w.via == "p"


def test_window_without_property_is_opaque():
    src = (
        "for (i = 0; i < n; i++) {\n"
        "  for (j = p[i]; j < p[i + 1]; j++) {\n"
        "    a[j] = x[i];\n"
        "  }\n"
        "}"
    )
    [w] = loop_effects(_loop(src)).arrays["a"].writes
    assert w.kind == OPAQUE


def test_assigned_scalars_are_collected():
    src = "for (i = 0; i < n; i++) { t = a[i]; b[i] = t * 2; }"
    eff = loop_effects(_loop(src))
    assert eff.scalars == {"t"}


def test_guarded_access_flagged():
    src = "for (i = 0; i < n; i++) { if (d[i] > 0) { a[0] = i; } }"
    [w] = loop_effects(_loop(src)).arrays["a"].writes
    assert w.kind == INVARIANT and w.guarded


def test_format_effects_renders():
    eff = loop_effects(_loop("for (i = 0; i < n; i++) a[i] = b[i];"))
    text = format_effects(eff)
    assert "W a:" in text and "R b:" in text


def test_spans_disjoint():
    a = SymRange(IntLit(0), IntLit(7))
    b = SymRange(IntLit(8), IntLit(15))
    c = SymRange(IntLit(4), IntLit(9))
    assert spans_disjoint(a, b)
    assert spans_disjoint(b, a)
    assert not spans_disjoint(a, c)
    assert not spans_disjoint(a, None)
    # symbolic bounds without facts: not provable, answer False
    s = SymRange(Sym("m"), Sym("m"))
    assert not spans_disjoint(a, s)


def test_trips_at_least_two():
    assert trips_at_least_two(SymRange(IntLit(0), IntLit(7)))
    assert trips_at_least_two(SymRange(IntLit(0), IntLit(1)))
    assert not trips_at_least_two(SymRange(IntLit(0), IntLit(0)))
    # symbolic upper bound without facts is unproven
    assert not trips_at_least_two(SymRange(IntLit(0), Sym("n")))
