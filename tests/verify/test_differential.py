"""Differential soundness gate: checker-accepted ⇒ race-free.

Runs the fixed fuzz corpus through the full proof-carrying pipeline and
cross-checks the *static* guarantee (a PARALLEL verdict whose certificate
the independent checker accepted) against the *dynamic* ground truth (the
race checker executing the loop).  Any divergence means either the
analysis emitted a bogus proof or the checker accepted one — both are
soundness bugs, and this gate is where they surface first.

``REPRO_FUZZ_COUNT`` scales the corpus (default 500).
"""

from __future__ import annotations

import dataclasses
import os

import numpy as np
import pytest

from repro.analysis import AnalysisConfig
from repro.lang.astnodes import For
from repro.parallelizer import parallelize
from repro.parallelizer.driver import _loops_by_id
from repro.runtime.parexec import IndexNotFound
from repro.runtime.racecheck import check_loop_races
from repro.verify import check_certificate

from tests.fuzz.gen import generate

FUZZ_COUNT = int(os.environ.get("REPRO_FUZZ_COUNT", "500"))
SHARDS = 10


def _shard_seeds(shard: int):
    return range(shard, FUZZ_COUNT, SHARDS)


def _top_parallel_loops(result):
    out = []
    for stmt in result.program.stmts:
        if isinstance(stmt, For):
            d = result.decisions.get(stmt.loop_id or "")
            if d is not None and d.parallel:
                out.append((stmt, d))
    return out


def _checks_hold(prog, loop, env, checks) -> bool:
    """Evaluate a decision's runtime if-clause at the loop's entry point
    (same contract as the fuzz gate: the parallel promise is conditional)."""
    from repro.lang.cparser import parse_expr
    from repro.runtime.interp import Interpreter

    if not checks:
        return True
    interp = Interpreter(env)
    for s in prog.stmts:
        if s is loop:
            break
        interp.exec_stmt(s)
    state = dict(interp.env)
    for name, val in list(state.items()):
        if isinstance(val, (int, np.integer)):
            state.setdefault(f"{name}_max", val)
    checker = Interpreter(state)
    return all(bool(checker.eval(parse_expr(c.text))) for c in checks)


@pytest.mark.parametrize("shard", range(SHARDS))
def test_checker_accepted_parallel_loops_are_race_free(shard):
    config = AnalysisConfig.new_algorithm()
    for seed in _shard_seeds(shard):
        fp = generate(seed)
        result = parallelize(fp.source, config)
        loops = _loops_by_id(result.analysis.program)
        for loop, dec in _top_parallel_loops(result):
            # static leg: every surviving PARALLEL verdict carries a
            # certificate the independent checker accepts — and the stored
            # verified bit must be reproducible from the certificate alone
            assert dec.certificate is not None, (
                f"seed {seed}: loop {loop.loop_id} parallel without certificate"
            )
            assert dec.certificate_verified, (
                f"seed {seed}: loop {loop.loop_id} parallel with unverified certificate"
            )
            res = check_certificate(dec.certificate, loops)
            assert res.ok, f"seed {seed}: loop {loop.loop_id}: {res.failures}"
            # dynamic leg: accepted proof must agree with an actual execution
            if not _checks_hold(result.program, loop, fp.fresh_env(), dec.checks):
                continue
            try:
                rep = check_loop_races(result.program, loop, fp.fresh_env())
            except IndexNotFound as exc:
                print(f"seed {seed}: loop {loop.loop_id} skipped ({exc})")
                continue
            assert rep.clean, (
                f"seed {seed}: loop {loop.loop_id} certified parallel but races: "
                + "; ".join(str(c) for c in rep.conflicts)
                + f"\n{fp.source}"
            )


@pytest.mark.parametrize("shard", range(SHARDS))
def test_checker_accepted_fusions_are_output_equivalent(shard):
    """Fusion soundness leg: every checker-accepted FusionStep must yield a
    fused execution equivalent to the unfused interpreter run (fusion only
    reorders independent iterations, so the final state is identical)."""
    from repro.runtime.compile import compile_program
    from repro.runtime.interp import run_program
    from repro.runtime.parexec import states_equivalent
    from repro.verify import check_fusion_step

    config = AnalysisConfig.new_algorithm()
    fused = 0
    for seed in _shard_seeds(shard):
        fp = generate(seed)
        result = parallelize(fp.source, config)
        verified = [f for f in result.fusions if f.verified]
        if not verified:
            continue
        # static leg: the stored verified bit is reproducible
        for fd in verified:
            res = check_fusion_step(fd.step, result.program)
            assert res.ok, f"seed {seed}: {fd.step.loops}: {res.failures}"
        # dynamic leg: fused compiled execution == unfused interpretation
        cp = compile_program(result.program, result.decisions, fusions=verified)
        if not cp.fused_groups:
            continue
        env_c = fp.fresh_env()
        cp.run(env_c)
        env_i = fp.fresh_env()
        run_program(result.program, env_i)
        assert states_equivalent(env_i, env_c), (
            f"seed {seed}: fused execution diverged "
            f"(groups {[g['loops'] for g in cp.fused_groups]})\n{fp.source}"
        )
        fused += len(cp.fused_groups)
    print(f"shard {shard}: {fused} fused groups exercised")


def test_speculative_decisions_are_sound_and_differentially_equal():
    """Speculative-tier soundness on the fuzz corpus.

    Every surviving speculative decision must carry a conditional
    certificate the independent checker accepts (the driver audits it, but
    the stored bit must be reproducible here).  Dynamically, the inspector
    arm is classified at the loop's entry point: when the index array
    really is monotone as hypothesized, the loop must be race-free (the
    parallel arm is safe); either way the compiled execution with
    speculative dispatch enabled must match the interpreter bit-for-bit.
    The almost-monotonic fuzz production guarantees both arms appear."""
    from repro.runtime.compile import execute
    from repro.runtime.inspector import inspect_monotonicity
    from repro.runtime.interp import Interpreter, run_program
    from repro.runtime.parexec import states_equivalent

    config = AnalysisConfig.new_algorithm()
    arms = {"pass": 0, "fail": 0}
    for seed in range(min(FUZZ_COUNT, 240)):
        fp = generate(seed)
        result = parallelize(fp.source, config)
        loops = _loops_by_id(result.analysis.program)
        spec = [
            (lid, d)
            for lid, d in result.decisions.items()
            if d.speculation is not None
        ]
        if not spec:
            continue
        for lid, d in spec:
            # a speculative certificate never backs an unconditional verdict
            assert not d.parallel, f"seed {seed}: speculative loop {lid} marked parallel"
            assert d.speculation_verified, (
                f"seed {seed}: unaudited speculation survived on {lid}"
            )
            res = check_certificate(d.speculation, loops)
            assert res.ok, f"seed {seed}: loop {lid}: {res.failures}"
        # classify each top-level speculative loop's inspector arm at its
        # entry point and racecheck the parallel arm
        for stmt in result.program.stmts:
            if not isinstance(stmt, For):
                continue
            d = result.decisions.get(stmt.loop_id or "")
            if d is None or d.speculation is None:
                continue
            interp = Interpreter(fp.fresh_env())
            for s in result.program.stmts:
                if s is stmt:
                    break
                interp.exec_stmt(s)
            holds = True
            for sp in d.speculation.speculative:
                arr = interp.env.get(sp.array)
                if arr is None:
                    holds = False
                    break
                rep = inspect_monotonicity(np.asarray(arr))
                ok = rep.strict if sp.required == "strict" else rep.monotonic
                holds = holds and bool(ok)
            arms["pass" if holds else "fail"] += 1
            if holds:
                try:
                    race = check_loop_races(result.program, stmt, fp.fresh_env())
                except IndexNotFound:
                    continue
                assert race.clean, (
                    f"seed {seed}: inspector-passing loop {stmt.loop_id} races: "
                    + "; ".join(str(c) for c in race.conflicts)
                    + f"\n{fp.source}"
                )
        # differential leg: compiled execution with speculative dispatch
        # enabled must agree with the interpreter regardless of the arm
        env_c = fp.fresh_env()
        execute(result.program, env_c, decisions=result.decisions,
                backend="compiled-parallel")
        env_i = fp.fresh_env()
        run_program(result.program, env_i)
        assert states_equivalent(env_i, env_c), (
            f"seed {seed}: speculative execution diverged\n{fp.source}"
        )
    assert arms["pass"] and arms["fail"], (
        f"corpus failed to exercise both inspector arms: {arms}"
    )


def test_corrupted_fusion_steps_are_rejected():
    """Mutation leg for FusionStep: flip each field of a real accepted step
    and the checker must reject the result."""
    from repro.verify import check_fusion_step

    config = AnalysisConfig.new_algorithm()
    exercised = 0
    for seed in range(FUZZ_COUNT):
        fp = generate(seed)
        result = parallelize(fp.source, config)
        for fd in result.fusions:
            if not fd.verified:
                continue
            step = fd.step
            prog = result.program
            # wrong unified index
            bad = dataclasses.replace(step, index=step.index + "_corrupt")
            assert not check_fusion_step(bad, prog).ok
            # member list truncated to a single loop
            bad = dataclasses.replace(step, loops=step.loops[:1])
            assert not check_fusion_step(bad, prog).ok
            # member list reversed (adjacency order no longer matches)
            if step.loops != tuple(reversed(step.loops)):
                bad = dataclasses.replace(step, loops=tuple(reversed(step.loops)))
                assert not check_fusion_step(bad, prog).ok
            # cross-array set claims an array that is not a cross array
            bad = dataclasses.replace(step, arrays=step.arrays + ("phantom_arr",))
            assert not check_fusion_step(bad, prog).ok
            # cross-array set hides a real cross array
            if step.arrays:
                bad = dataclasses.replace(step, arrays=step.arrays[1:])
                assert not check_fusion_step(bad, prog).ok
            exercised += 1
        if exercised >= 5:
            break
    assert exercised, "corpus produced no verified fusions to corrupt"


def test_corrupted_corpus_certificates_are_rejected():
    """Mutation leg: flip one field of a real fuzz-corpus certificate and
    the checker must notice.  Scans the corpus until it has exercised each
    step family at least once."""
    config = AnalysisConfig.new_algorithm()
    exercised = set()
    want = {"index", "recurrence", "monotonic", "disproof"}
    for seed in range(FUZZ_COUNT):
        if exercised == want:
            break
        fp = generate(seed)
        result = parallelize(fp.source, config)
        loops = _loops_by_id(result.analysis.program)
        for _, dec in _top_parallel_loops(result):
            cert = dec.certificate
            if cert is None:
                continue
            bad = dataclasses.replace(cert, index=cert.index + "_corrupt")
            assert not check_certificate(bad, loops).ok
            exercised.add("index")
            if cert.recurrences:
                s = cert.recurrences[0]
                bad = dataclasses.replace(
                    cert,
                    recurrences=(dataclasses.replace(s, var=s.var + "_corrupt"),)
                    + cert.recurrences[1:],
                )
                assert not check_certificate(bad, loops).ok
                exercised.add("recurrence")
            if cert.monotonic:
                s = cert.monotonic[0]
                bad = dataclasses.replace(
                    cert,
                    monotonic=(dataclasses.replace(s, lemma="bogus"),) + cert.monotonic[1:],
                )
                assert not check_certificate(bad, loops).ok
                exercised.add("monotonic")
            if cert.disproofs:
                s = cert.disproofs[0]
                bad = dataclasses.replace(
                    cert,
                    disproofs=(dataclasses.replace(s, checks=(), route="classical"),)
                    + cert.disproofs[1:],
                )
                ok = check_certificate(bad, loops).ok
                # only a genuinely check-free classical pair may survive this
                if s.route != "classical" or s.checks:
                    assert not ok
                    exercised.add("disproof")
    # the corpus always produces plain parallel loops; the richer families
    # appear once counter fills + gathers line up
    assert "index" in exercised and "disproof" in exercised
