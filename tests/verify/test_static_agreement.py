"""Differential agreement gate: static chunk verdicts vs dynamic traces.

Soundness of the static classifier, checked over the fuzz corpus:

* a loop the static analysis calls ``chunk-disjoint`` must be race-free
  under the dynamic trace checker on a real execution (static-disjoint
  implies dynamic race-free — the direction the runtime relies on when
  it skips dynamic machinery);
* no loop the driver marked PARALLEL may classify ``overlapping`` (the
  driver's own sanitizer demotes those before they ever reach here);
* every known-racy production classifies ``overlapping``/``unknown``.

Plus the registry half of the acceptance bar: every parallel loop of
every registered benchmark classifies ``chunk-disjoint`` or an explicit
``unknown`` with a recorded reason.

``REPRO_STATIC_FUZZ_COUNT`` scales the corpus (default 300).
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import AnalysisConfig
from repro.benchmarks import BENCHMARK_NAMES, get_benchmark
from repro.lang.astnodes import For
from repro.parallelizer import parallelize
from repro.runtime.parexec import IndexNotFound
from repro.runtime.racecheck import check_loop_races
from repro.verify.staticrace import DISJOINT, OVERLAPPING, UNKNOWN, classify_loop

from tests.fuzz.gen import generate
from tests.fuzz.test_fuzz_gate import _checks_hold, _top_parallel_loops

FUZZ_COUNT = int(os.environ.get("REPRO_STATIC_FUZZ_COUNT", "300"))
SHARDS = 6


@pytest.mark.parametrize("shard", range(SHARDS))
def test_static_disjoint_implies_dynamic_race_free(shard):
    config = AnalysisConfig.new_algorithm()
    for seed in range(shard, FUZZ_COUNT, SHARDS):
        fp = generate(seed)
        result = parallelize(fp.source, config)
        props = result.analysis.properties
        for loop, dec in _top_parallel_loops(result):
            verdict = classify_loop(loop, decision=dec, properties=props)
            # the driver's sanitizer must have demoted any proven overlap
            assert verdict.classification != OVERLAPPING, (
                f"seed {seed}: PARALLEL loop {dec.loop_id} statically "
                f"overlapping: {verdict.reason}\n{fp.source}"
            )
            if verdict.classification != DISJOINT:
                continue
            if not _checks_hold(result.program, loop, fp.fresh_env(), dec.checks):
                continue  # the proof is conditional on the failed if-clause
            try:
                rep = check_loop_races(result.program, loop, fp.fresh_env())
            except IndexNotFound:
                continue
            assert rep.clean, (
                f"seed {seed}: loop {dec.loop_id} statically chunk-disjoint "
                f"({verdict.reason}) but dynamically racy: "
                + "; ".join(str(c) for c in rep.conflicts)
                + f"\n{fp.source}"
            )


def test_static_mode_racecheck_agrees_with_trace():
    """``mode="static"`` clean answers must match a real trace."""
    config = AnalysisConfig.new_algorithm()
    checked = 0
    for seed in range(0, FUZZ_COUNT, SHARDS):
        fp = generate(seed)
        result = parallelize(fp.source, config)
        props = result.analysis.properties
        for loop, dec in _top_parallel_loops(result):
            if not _checks_hold(result.program, loop, fp.fresh_env(), dec.checks):
                continue
            try:
                srep = check_loop_races(
                    result.program, loop, fp.fresh_env(),
                    mode="static", decision=dec, properties=props,
                )
            except IndexNotFound:
                continue
            if srep.mode != "static" or not srep.clean:
                continue
            trep = check_loop_races(result.program, loop, fp.fresh_env())
            assert trep.clean, (
                f"seed {seed}: static mode cleared loop {dec.loop_id} "
                f"({srep.static_reason}) but the trace found: "
                + "; ".join(str(c) for c in trep.conflicts)
            )
            checked += 1
    assert checked > 0, "gate exercised no static-mode answers"


def test_all_registry_benchmarks_classify_disjoint_or_explained():
    """Acceptance bar: every parallel loop of every registered benchmark
    is ``chunk-disjoint`` or an explicit ``unknown`` with a reason."""
    for name in BENCHMARK_NAMES:
        b = get_benchmark(name)
        result = parallelize(b.source, AnalysisConfig.new_algorithm())
        props = result.analysis.properties
        seen = 0
        for stmt in result.program.walk():
            if not isinstance(stmt, For):
                continue
            dec = result.decisions.get(stmt.loop_id or "")
            if dec is None or not dec.parallel:
                continue
            seen += 1
            verdict = classify_loop(stmt, decision=dec, properties=props)
            assert verdict.classification in (DISJOINT, UNKNOWN), (
                f"{name}: parallel loop {dec.loop_id} classified "
                f"{verdict.classification}: {verdict.reason}"
            )
            assert verdict.reason, f"{name}: {dec.loop_id} verdict lacks a reason"
        # benchmarks without parallel decisions are vacuously fine
        print(f"{name}: {seen} parallel loops classified")
