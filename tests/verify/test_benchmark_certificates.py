"""Every benchmark PARALLEL verdict must carry a checker-accepted certificate.

This is the end-to-end guarantee of the proof-carrying design: across the
paper's whole benchmark set, no loop is marked parallel on the analysis'
say-so alone — the independent checker has re-derived every step.
"""

from __future__ import annotations

import pytest

from repro.analysis import AnalysisConfig
from repro.benchmarks.registry import all_benchmarks
from repro.parallelizer import parallelize
from repro.parallelizer.driver import _loops_by_id
from repro.verify import check_certificate

BENCHMARKS = {b.name: b for b in all_benchmarks()}


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_parallel_verdicts_are_certified(name):
    bench = BENCHMARKS[name]
    result = parallelize(bench.source, AnalysisConfig.new_algorithm())
    assert not any(d.kind == "certificate-rejected" for d in result.diagnostics), (
        f"{name}: checker demoted a verdict the analysis emitted"
    )
    loops = _loops_by_id(result.analysis.program)
    certified = 0
    for loop_id, d in sorted(result.decisions.items()):
        if not d.parallel:
            continue
        assert d.certificate is not None, f"{name} {loop_id}: parallel without certificate"
        assert d.certificate_verified, f"{name} {loop_id}: certificate not verified"
        # re-run the checker here: the driver's stored bit must be reproducible
        res = check_certificate(d.certificate, loops)
        assert res.ok, f"{name} {loop_id}: {res.failures}"
        certified += 1
    if any(d.parallel for d in result.decisions.values()):
        assert certified > 0


def test_certificates_disabled_leaves_verdicts_unverified():
    import dataclasses

    bench = BENCHMARKS["AMGmk"]
    config = dataclasses.replace(AnalysisConfig.new_algorithm(), verify_certificates=False)
    result = parallelize(bench.source, config)
    parallels = [d for d in result.decisions.values() if d.parallel]
    assert parallels
    assert all(not d.certificate_verified for d in parallels)
