"""Independent certificate checker: accept real proofs, reject corrupted ones.

The mutation tests take the genuine certificate the driver emitted for a
counter-fill + gather/scatter kernel and flip one field of one step at a
time (``dataclasses.replace`` on the frozen step).  Every mutation must be
rejected — that is what makes each certificate field load-bearing rather
than decorative.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis import AnalysisConfig
from repro.analysis.properties import MonoKind
from repro.ir.ranges import SymRange
from repro.ir.symbols import IntLit, Sym
from repro.lang.astnodes import For
from repro.parallelizer import parallelize
from repro.parallelizer.driver import _loops_by_id
from repro.verify import check_certificate
from repro.verify.certificate import DisproofStep, SSRStep


def _top_decisions(result):
    """Top-level loop decisions in program order (loop ids are assigned
    from a process-global counter, so positions, not names, are stable)."""
    return [
        result.decisions[s.loop_id]
        for s in result.program.stmts
        if isinstance(s, For) and s.loop_id in result.decisions
    ]

COUNTER_FILL = """
num = 0;
for (i = 0; i < n; i++) {
  if (d[i] > 0) {
    b[num] = i;
    num = num + 1;
  }
}
for (j = 0; j < m; j++) {
  y[b[j]] = y[b[j]] + x[j];
}
"""

AFFINE_FILL = """
for (i = 0; i < n; i++) {
  b[i] = 2 * i;
}
for (j = 0; j < m; j++) {
  y[b[j]] = x[j] + 1;
}
"""


@pytest.fixture(scope="module")
def counter_case():
    result = parallelize(COUNTER_FILL, AnalysisConfig.new_algorithm())
    fill, consumer = _top_decisions(result)
    assert not fill.parallel and consumer.parallel
    assert consumer.certificate is not None
    return consumer.certificate, _loops_by_id(result.analysis.program)


def _replace_step(cert, field_name, step):
    steps = getattr(cert, field_name)
    return dataclasses.replace(cert, **{field_name: (step,) + steps[1:]})


def test_genuine_certificate_accepted(counter_case):
    cert, loops = counter_case
    res = check_certificate(cert, loops)
    assert res.ok, res.failures


def test_affine_fill_certificate_accepted():
    result = parallelize(AFFINE_FILL, AnalysisConfig.new_algorithm())
    _, consumer = _top_decisions(result)
    assert consumer.parallel and consumer.certificate is not None
    assert consumer.certificate_verified
    assert check_certificate(consumer.certificate, _loops_by_id(result.analysis.program)).ok


def test_missing_loop_rejected(counter_case):
    cert, loops = counter_case
    pruned = {k: v for k, v in loops.items() if k != cert.loop_id}
    assert not check_certificate(cert, pruned).ok


def test_wrong_loop_id_rejected(counter_case):
    cert, loops = counter_case
    fill_id = next(k for k in loops if k != cert.loop_id)
    bad = dataclasses.replace(cert, loop_id=fill_id)
    assert not check_certificate(bad, loops).ok


def test_wrong_index_rejected(counter_case):
    cert, loops = counter_case
    bad = dataclasses.replace(cert, index="k")
    assert not check_certificate(bad, loops).ok


# -- SSR step mutations ------------------------------------------------------


def test_ssr_strengthened_kind_rejected(counter_case):
    cert, loops = counter_case
    ssr = cert.recurrences[0]
    assert ssr.kind is MonoKind.MA  # guarded increment: not strict
    bad = _replace_step(cert, "recurrences", dataclasses.replace(ssr, kind=MonoKind.SMA))
    assert not check_certificate(bad, loops).ok


def test_ssr_unconditional_claim_rejected(counter_case):
    cert, loops = counter_case
    ssr = cert.recurrences[0]
    assert ssr.conditional
    bad = _replace_step(cert, "recurrences", dataclasses.replace(ssr, conditional=False))
    assert not check_certificate(bad, loops).ok


def test_ssr_narrowed_k_range_rejected(counter_case):
    cert, loops = counter_case
    ssr = cert.recurrences[0]
    # the derived increment range is [0:1]; claiming [1:1] drops the
    # not-taken branch and would wrongly imply strictness
    bad = _replace_step(
        cert, "recurrences", dataclasses.replace(ssr, k=SymRange(IntLit(1), IntLit(1)))
    )
    assert not check_certificate(bad, loops).ok


def test_ssr_for_unassigned_scalar_rejected(counter_case):
    cert, loops = counter_case
    ghost = SSRStep(var="zzz", kind=MonoKind.MA, k=SymRange(IntLit(1), IntLit(1)), conditional=False)
    bad = dataclasses.replace(cert, recurrences=cert.recurrences + (ghost,))
    assert not check_certificate(bad, loops).ok


def test_dangling_mono_ssr_cross_reference_rejected(counter_case):
    cert, loops = counter_case
    # the mono step still cites the SSR, but the recurrence list no longer
    # carries it — the cross-reference must be caught
    bad = dataclasses.replace(cert, recurrences=())
    assert not check_certificate(bad, loops).ok


# -- mono step mutations -----------------------------------------------------


def test_mono_wrong_lemma_tag_rejected(counter_case):
    cert, loops = counter_case
    m = cert.monotonic[0]
    assert m.lemma == "lemma1"  # the fill is guarded -> base rule cannot apply
    bad = _replace_step(cert, "monotonic", dataclasses.replace(m, lemma="counter-fill"))
    assert not check_certificate(bad, loops).ok


def test_mono_unknown_lemma_tag_rejected(counter_case):
    cert, loops = counter_case
    m = cert.monotonic[0]
    bad = _replace_step(cert, "monotonic", dataclasses.replace(m, lemma="lemma99"))
    assert not check_certificate(bad, loops).ok


def test_mono_wrong_counter_rejected(counter_case):
    cert, loops = counter_case
    m = cert.monotonic[0]
    bad = _replace_step(cert, "monotonic", dataclasses.replace(m, counter_var="i"))
    assert not check_certificate(bad, loops).ok


def test_mono_wrong_counter_max_symbol_rejected(counter_case):
    cert, loops = counter_case
    m = cert.monotonic[0]
    bad = _replace_step(cert, "monotonic", dataclasses.replace(m, counter_max=Sym("n")))
    assert not check_certificate(bad, loops).ok


def test_mono_widened_region_rejected(counter_case):
    cert, loops = counter_case
    m = cert.monotonic[0]
    # the proven fill region ends at num_max; claiming [0:n] would let the
    # disproof trust unfilled slots
    bad = _replace_step(
        cert, "monotonic", dataclasses.replace(m, region=SymRange(IntLit(0), Sym("n")))
    )
    assert not check_certificate(bad, loops).ok


def test_mono_wrong_source_loop_rejected(counter_case):
    cert, loops = counter_case
    m = cert.monotonic[0]
    # the consumer loop itself has no matching fill store
    bad = _replace_step(cert, "monotonic", dataclasses.replace(m, source_loop=cert.loop_id))
    assert not check_certificate(bad, loops).ok


def test_mono_wrong_array_rejected(counter_case):
    cert, loops = counter_case
    m = cert.monotonic[0]
    bad = _replace_step(cert, "monotonic", dataclasses.replace(m, array="d"))
    assert not check_certificate(bad, loops).ok


# -- disproof step mutations -------------------------------------------------


def test_disproof_wrong_route_rejected(counter_case):
    cert, loops = counter_case
    d = cert.disproofs[0]
    assert d.route == "direct-indirection"
    bad = _replace_step(cert, "disproofs", dataclasses.replace(d, route="classical"))
    assert not check_certificate(bad, loops).ok


def test_disproof_wrong_via_array_rejected(counter_case):
    cert, loops = counter_case
    d = cert.disproofs[0]
    bad = _replace_step(cert, "disproofs", dataclasses.replace(d, via_array="x"))
    assert not check_certificate(bad, loops).ok


def test_disproof_dropped_runtime_check_rejected(counter_case):
    cert, loops = counter_case
    d = cert.disproofs[0]
    assert d.checks  # the gather needs `m-1 <= num_max`
    bad = _replace_step(cert, "disproofs", dataclasses.replace(d, checks=()))
    assert not check_certificate(bad, loops).ok


def test_disproof_missing_written_array_rejected(counter_case):
    cert, loops = counter_case
    bad = dataclasses.replace(cert, disproofs=())
    assert not check_certificate(bad, loops).ok


def test_disproof_for_unwritten_array_rejected(counter_case):
    cert, loops = counter_case
    ghost = DisproofStep(array="x", route="classical")
    bad = dataclasses.replace(cert, disproofs=cert.disproofs + (ghost,))
    assert not check_certificate(bad, loops).ok


def test_check_result_reports_reason(counter_case):
    cert, loops = counter_case
    bad = dataclasses.replace(cert, index="k")
    res = check_certificate(bad, loops)
    assert not res.ok and res.failures and all(isinstance(f, str) for f in res.failures)
