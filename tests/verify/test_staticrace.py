"""Chunk-race classifier: negative paths, demotion, and snapshot-freedom.

The negative-path suite is the load-bearing half: known-racy shapes
(overlapping scatter, non-injective index arrays, cross-chunk
accumulation without privatization, loop-invariant stores) must classify
``overlapping`` or ``unknown`` — never ``chunk-disjoint``.
"""

from __future__ import annotations

import dataclasses

from repro.analysis import AnalysisConfig
from repro.analysis.normalize import normalize_program
from repro.analysis.properties import ArrayProperty, MonoKind, PropertyStore
from repro.diagnostics import STATIC_RACE_DETECTED
from repro.lang.astnodes import For
from repro.lang.cparser import parse_program
from repro.parallelizer import parallelize
from repro.parallelizer.driver import LoopDecision, _static_race_audit
from repro.parallelizer.explain import _find_nest, format_audit
from repro.verify.staticrace import (
    DISJOINT,
    OVERLAPPING,
    UNKNOWN,
    classify_decisions,
    classify_loop,
    format_verdict,
)

from tests.fuzz.gen import racy_corpus


def _classify(src: str, k: int = 0, **kw):
    prog = normalize_program(parse_program(src))
    loops = [s for s in prog.stmts if isinstance(s, For)]
    return classify_loop(loops[k], **kw)


def _decision(**kw) -> LoopDecision:
    base = dict(loop_id="L", index="i", depth=0, parallel=True, reason="test")
    base.update(kw)
    return LoopDecision(**base)


# -- positive paths ---------------------------------------------------------


def test_stride_one_writes_are_disjoint():
    v = _classify("for (i = 0; i < 8; i++) a[i] = i;")
    assert v.classification == DISJOINT
    assert v.verdict_of("a").classification == DISJOINT


def test_no_array_writes_is_disjoint():
    v = _classify(
        "for (i = 0; i < 8; i++) s = s + a[i];",
        decision=_decision(reductions=[("+", "s")]),
    )
    assert v.classification == DISJOINT
    assert "no shared-array writes" in v.reason


def test_sma_scatter_is_disjoint():
    props = PropertyStore()
    props.record(ArrayProperty(array="idx", kind=MonoKind.SMA))
    v = _classify("for (i = 0; i < 8; i++) y[idx[i]] = x[i];", properties=props)
    assert v.classification == DISJOINT


# -- negative paths (the suite ISSUE satellite 3 demands) -------------------


def test_overlapping_scatter_never_disjoint():
    v = _classify("for (i = 0; i < 8; i++) a[idx[i]] = i;")
    assert v.classification in (OVERLAPPING, UNKNOWN)
    assert v.classification != DISJOINT


def test_ma_only_index_array_never_disjoint():
    # monotonic but not strictly: values may repeat, writes may collide
    props = PropertyStore()
    props.record(ArrayProperty(array="idx", kind=MonoKind.MA))
    v = _classify("for (i = 0; i < 8; i++) a[idx[i]] = i;", properties=props)
    assert v.classification == UNKNOWN


def test_unprivatized_accumulation_is_unknown():
    # cross-chunk reduction with no privatization contract
    v = _classify("for (i = 0; i < 8; i++) { s = s + a[i]; b[i] = s; }")
    assert v.classification == UNKNOWN
    assert "s" in v.reason


def test_loop_invariant_store_is_overlapping():
    v = _classify("for (i = 0; i < 8; i++) a[0] = i;")
    assert v.classification == OVERLAPPING
    assert "trip count" in v.verdict_of("a").reason


def test_guarded_invariant_store_is_unknown_not_overlapping():
    # the guard may fire at most once — no overlap *proof*
    v = _classify("for (i = 0; i < 8; i++) { if (d[i] > 0) { a[0] = i; } }")
    assert v.classification == UNKNOWN


def test_offset_colliding_writes_are_overlapping():
    v = _classify("for (i = 0; i < 8; i++) { a[i] = b[i]; a[i + 1] = c[i]; }")
    assert v.classification == OVERLAPPING


def test_symbolic_trip_count_blocks_invariant_overlap_proof():
    # n could be 1: the invariant store is suspicious but not proven racy
    v = _classify("for (i = 0; i < n; i++) a[0] = i;")
    assert v.classification == UNKNOWN


def test_racy_corpus_never_classifies_disjoint():
    for fp in racy_corpus():
        prog = normalize_program(parse_program(fp.source))
        loops = [s for s in prog.stmts if isinstance(s, For)]
        v = classify_loop(loops[-1])
        assert v.classification != DISJOINT, (
            f"racy seed {fp.seed} classified chunk-disjoint\n{fp.source}"
        )


# -- snapshot-freedom (feedback-free reads) ---------------------------------


def test_rmw_same_element_not_snapshot_free():
    # re-running a partial chunk would double-apply the increment
    v = _classify("for (i = 0; i < 8; i++) a[i] = a[i] + 1;")
    assert v.classification == DISJOINT
    assert not v.verdict_of("a").snapshot_free


def test_write_before_read_is_snapshot_free():
    # a[i] is rewritten from unwritten data before any read: idempotent
    v = _classify("for (i = 0; i < 8; i++) { a[i] = b[i]; c[i] = a[i] * 2; }")
    assert v.classification == DISJOINT
    assert v.verdict_of("a").snapshot_free
    assert not v.verdict_of("c").snapshot_free  # no reads of c at all


def test_disjoint_read_span_is_snapshot_free():
    # reads [8:15] never observe writes [0:7]
    v = _classify("for (i = 0; i < 8; i++) a[i] = a[i + 8];")
    assert v.classification == DISJOINT
    assert v.verdict_of("a").snapshot_free


def test_guarded_write_defeats_write_before_read():
    src = (
        "for (i = 0; i < 8; i++) {\n"
        "  if (d[i] > 0) { a[i] = b[i]; }\n"
        "  c[i] = a[i] + 1;\n"
        "}"
    )
    v = _classify(src)
    av = v.verdict_of("a")
    if av is not None:  # classification of `a` itself may vary
        assert not av.snapshot_free


def test_format_verdict_renders():
    v = _classify("for (i = 0; i < 8; i++) { a[i] = b[i]; c[i] = a[i] * 2; }")
    text = format_verdict(v)
    assert "chunk classification" in text
    assert "[snapshot-free]" in text


# -- driver demotion + diagnostic (ISSUE satellite 1) -----------------------


def test_static_race_audit_demotes_and_records_diagnostic():
    src = "for (i = 0; i < 8; i++) a[0] = i;"
    res = parallelize(src, AnalysisConfig.new_algorithm())
    (lid,) = [s.loop_id for s in res.program.stmts if isinstance(s, For)]
    d = res.decisions[lid]
    assert not d.parallel  # the dependence test already refuses this loop

    # simulate an earlier-phase bug handing the sanitizer a parallel verdict
    forced = dataclasses.replace(d, parallel=True, reason="forced for test")
    nest = _find_nest(res, lid)
    before = len(res.analysis.diagnostics)
    demoted = _static_race_audit(forced, nest, res.analysis, res.analysis.properties)

    assert not demoted.parallel
    assert demoted.reason.startswith("static race detected")
    assert demoted.blockers
    new = res.analysis.diagnostics[before:]
    assert any(di.kind == STATIC_RACE_DETECTED for di in new)
    (diag,) = [di for di in new if di.kind == STATIC_RACE_DETECTED]
    assert diag.nest_id == lid
    assert "a" in diag.detail


def test_format_audit_shows_demotion_trail():
    src = "for (i = 0; i < 8; i++) a[0] = i;"
    res = parallelize(src, AnalysisConfig.new_algorithm())
    (lid,) = [s.loop_id for s in res.program.stmts if isinstance(s, For)]
    forced = dataclasses.replace(res.decisions[lid], parallel=True)
    nest = _find_nest(res, lid)
    res.decisions[lid] = _static_race_audit(
        forced, nest, res.analysis, res.analysis.properties
    )
    audit = format_audit(res)
    assert "DEMOTED" in audit
    assert "static race detected" in audit


def test_audit_includes_effect_summary_for_parallel_loops():
    src = "for (i = 0; i < n; i++) a[i] = b[i] + 1;"
    res = parallelize(src, AnalysisConfig.new_algorithm())
    audit = format_audit(res)
    assert "effects of loop" in audit
    assert "chunk classification" in audit


def test_classify_decisions_covers_nested_parallel_loops():
    # parallel loop nested under a serial outer loop must still be classified
    src = (
        "for (t = 0; t < 4; t++) {\n"
        "  for (i = 0; i < n; i++) { a[i] = a[i] + b[i]; }\n"
        "}"
    )
    res = parallelize(src, AnalysisConfig.new_algorithm())
    verdicts = classify_decisions(res)
    par = [lid for lid, d in res.decisions.items() if d.parallel]
    for lid in par:
        assert lid in verdicts
