#!/usr/bin/env python
"""Multi-dimensional monotonicity walk-through (paper §3.3, Figure 12).

Shows the per-level aggregation the Phase-2 algorithm performs on the UA
benchmark's ``idel`` fill nest: at the two inner levels no property can be
determined; the expressions are simplified and the loops collapsed; at the
outermost level LEMMA 2 fires and proves #(SMA;0).
"""

from repro.analysis import AnalysisConfig, analyze_program
from repro.lang import parse_program
from repro.runtime.interp import run_program

FILL = """
for(iel = 0; iel < LELT; iel++) {
    ntemp = 125*iel;
    for(j = 0; j < 5; j++) {
        for(i = 0; i < 5; i++) {
            idel[iel][0][j][i] = ntemp + i*5 + j*25 + 4;
            idel[iel][1][j][i] = ntemp + i*5 + j*25;
            idel[iel][2][j][i] = ntemp + i + j*25 + 20;
            idel[iel][3][j][i] = ntemp + i + j*25;
            idel[iel][4][j][i] = ntemp + i + j*5 + 100;
            idel[iel][5][j][i] = ntemp + i + j*5;
        }
    }
}
"""


def main() -> None:
    res = analyze_program(FILL, AnalysisConfig.new_algorithm())

    print("=== Per-level aggregation (inside-out) ===")
    for loop_id, p2 in res.loop_results.items():
        cl = p2.collapsed
        print(f"loop {loop_id} (index {cl.index}, trip {cl.trip_count}):")
        for arr, recs in cl.array_effects.items():
            for rec in recs[:2]:
                print(f"    {arr}{rec}")
            if len(recs) > 2:
                print(f"    ... {len(recs) - 2} more store sites")
        if p2.mono_arrays:
            for arr, m in p2.mono_arrays.items():
                print(f"    => {arr} monotonic: {m.kind} w.r.t. dim {m.dim} "
                      f"(alpha={m.alpha}, rem={m.rem_range})")
        else:
            print("    => no property at this level (expressions simplified, loop collapsed)")
        print()

    print("=== Final property (paper: idel[0:LELT-1][...] = [0:125*(LELT-1)]#(SMA;0)+[0:124]) ===")
    for prop in res.properties.all_properties():
        print(f"  {prop}")
    print()

    print("=== Concrete verification on LELT=4 ===")
    env = {"LELT": 4, "idel": __import__("numpy").zeros((4, 6, 5, 5), dtype=int)}
    out = run_program(parse_program(FILL), env)
    for iel in range(4):
        v = out["idel"][iel].reshape(-1)
        print(f"  iel={iel}: values span [{v.min()}, {v.max()}]")
    print("ranges are disjoint and increasing -> strictly Range-Monotonic w.r.t. dim 0")


if __name__ == "__main__":
    main()
