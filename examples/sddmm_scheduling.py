#!/usr/bin/env python
"""SDDMM scheduling study (paper Figure 16).

Once the new algorithm proves ``col_ptr`` monotonic and parallelizes the
outer column loop, the *schedule* decides how well the skewed per-column
work balances.  This reproduces the paper's observation: dynamic beats
static for gsm_106857 / dielFilterV2clx / inline_1; static wins for the
uniformly-balanced af_shell1.
"""

from repro.benchmarks import get_benchmark
from repro.experiments.harness import run_benchmark
from repro.workloads.suitesparse import suitesparse_profile


def main() -> None:
    bench = get_benchmark("SDDMM")

    print("=== Column balance of the four inputs ===")
    for ds in bench.datasets:
        c = suitesparse_profile(ds).astype(float)
        print(f"  {ds:<18} mean nnz/col {c.mean():7.1f}   cv {c.std() / c.mean():5.2f}")
    print()

    print("=== Improvement over serial, dynamic vs static (Figure 16) ===")
    header = f"{'dataset':<18} {'schedule':<9}" + "".join(f"{p:>9} c" for p in (4, 8, 16))
    print(header)
    for ds in bench.datasets:
        for sched in ("dynamic", "static"):
            runs = [
                run_benchmark(bench, ds, "Cetus+NewAlgo", p, schedule=sched, chunk=32)
                for p in (4, 8, 16)
            ]
            cells = "".join(f"{r.speedup:>10.2f}" for r in runs)
            print(f"{ds:<18} {sched:<9}{cells}")
    print()

    print("=== Average dynamic-over-static gain for the skewed matrices ===")
    for p in (4, 8, 16):
        gains = []
        for ds in ("gsm_106857", "dielFilterV2clx", "inline_1"):
            d = run_benchmark(bench, ds, "Cetus+NewAlgo", p, schedule="dynamic", chunk=32)
            s = run_benchmark(bench, ds, "Cetus+NewAlgo", p, schedule="static")
            gains.append(d.speedup / s.speedup)
        print(f"  {p:>2} cores: {sum(gains) / len(gains):.2f}x  (paper: 1.24/1.548/1.82)")


if __name__ == "__main__":
    main()
