#!/usr/bin/env python
"""Bringing your own kernel: the paper's Figure 1 loop (EVSL).

Shows the full workflow a downstream user follows for a new code:

1. write the fill + kernel in the mini-C subset (here: the spectral-density
   accumulation from the EVSL library that opens the paper);
2. compile under the three pipelines and read the explanation report;
3. validate the parallel decision with the race checker and the shuffled
   executor on a real input;
4. meter per-iteration work with the interpreter and build a PerfModel
   from the *measured* profile;
5. predict speedups on the machine model.
"""

import numpy as np

from repro.analysis import AnalysisConfig
from repro.lang import parse_program
from repro.lang.astnodes import For
from repro.parallelizer import format_report, parallelize
from repro.parallelizer.explain import explain_loop
from repro.runtime import (
    KernelComponent,
    PerfModel,
    check_loop_races,
    execute_shuffled,
    meter_loop_work,
    plan_from_decisions,
    run_program,
    simulate_app,
    states_equivalent,
)

# Figure 1 of the paper: y[ind[j]] += gamma2 * exp(-((xdos[ind[j]]-t)^2)/sigma2)
# plus the fill loop that makes ind analyzable (the Figure 4 pattern).
SOURCE = """
m = 0;
for (j = 0; j < npts; j++) {
    if ((xdos[j] - t) < width)
        ind[m++] = j;
}
for (j = 0; j < numPlaced; j++) {
    y[ind[j]] = y[ind[j]] + gamma2 * exp(-((xdos[ind[j]] - t) * (xdos[ind[j]] - t)) / sigma2);
}
"""


def make_env(npts=400, seed=0):
    rng = np.random.default_rng(seed)
    xdos = np.sort(rng.uniform(0.0, 10.0, npts))
    width = 5.0
    t = 2.0
    placed = int(np.sum((xdos - t) < width))
    return {
        "npts": npts,
        "numPlaced": placed,
        "t": t,
        "width": width,
        "gamma2": 0.5,
        "sigma2": 1.3,
        "xdos": xdos,
        "ind": np.zeros(npts, dtype=np.int64),
        "y": np.zeros(npts),
        "m": 0,
    }


def deep(env):
    return {k: (v.copy() if isinstance(v, np.ndarray) else v) for k, v in env.items()}


def main() -> None:
    print("=== 1. compile under all three pipelines ===")
    for cfg in (AnalysisConfig.classical(), AnalysisConfig.new_algorithm()):
        print(format_report(parallelize(SOURCE, cfg)))
        print()

    result = parallelize(SOURCE, AnalysisConfig.new_algorithm())
    kernel = next(
        s
        for s in result.program.stmts
        if isinstance(s, For) and result.decisions[s.loop_id].parallel
    )
    d = result.decisions[kernel.loop_id]

    print("=== 2. why (explanation report) ===")
    print(explain_loop(result, kernel.loop_id))
    print()

    print("=== 3. behavioral validation on a real input ===")
    env = make_env()
    race = check_loop_races(result.program, kernel, deep(env))
    print(f"race check : {race.iterations} iterations, clean={race.clean}")
    serial = run_program(result.program, deep(env))
    shuffled = execute_shuffled(result.program, kernel, d, deep(env), seed=11)
    print(f"shuffled   : equivalent={states_equivalent(serial, shuffled, ignore=set(d.private))}")
    print()

    print("=== 4. measured work profile -> performance model ===")
    prog = parse_program(SOURCE)
    loops = [s for s in prog.stmts if isinstance(s, For)]
    work = meter_loop_work(prog, loops[1], deep(env))
    print(f"kernel iterations: {len(work)}, ops/iter mean {work.mean():.1f}")
    perf = PerfModel(
        components=[
            KernelComponent(
                name="evsl",
                nest_path=(1,),
                work=work,
                reps=1000,  # the DOS loop runs once per sample point
                level_trips=(len(work),),
                contention=0.08,
            )
        ],
        serial_time_target=2.0,  # suppose the serial app takes 2 s
    )
    plan = plan_from_decisions(perf, result)
    print()
    print("=== 5. predicted speedups ===")
    for p in (4, 8, 16):
        t = simulate_app(perf, plan, p)
        print(f"  {p:>2} cores: {perf.serial_time_target / t:5.2f}x")


if __name__ == "__main__":
    main()
