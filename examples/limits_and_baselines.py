#!/usr/bin/env python
"""The limits of the technique and the run-time alternatives (paper §4.3/§5).

Two of the twelve benchmarks improve under NO compile-time pipeline:

* **IS** — the histogram write ``bucket[key[i]]++`` indexes through input
  data; its subscripted-subscript pattern is "too complex to be analyzed
  at compile-time";
* **Incomplete Cholesky** — the factor's index arrays (``ia/ja/dia``) come
  from the input matrix; no fill loop exists in the program to analyze.

For such loops the alternatives are run-time techniques — this script
shows why the paper argues they are a poor fit for small kernels:
inspector-executor needs tens of runs to amortize; speculation pays a
logging tax on every run.
"""

from repro.analysis import AnalysisConfig
from repro.benchmarks import get_benchmark
from repro.experiments.baselines import format_baselines
from repro.parallelizer import format_report, parallelize


def main() -> None:
    for name in ("IS", "Incomplete-Cholesky"):
        bench = get_benchmark(name)
        print(f"=== {name} under Cetus+NewAlgo ===")
        result = parallelize(bench.source, AnalysisConfig.new_algorithm())
        print(format_report(result))
        print(f"note: {bench.notes}")
        print()

    print("=== Why not just do it at run time? (paper §5) ===")
    print(format_baselines())
    print()
    print(
        "Inspector-executor only beats serial after ~40-60 kernel runs "
        "(the paper's amortization argument); speculation multiplies every "
        "run by its logging factor. The compile-time proof costs nothing "
        "at run time beyond the if-clause."
    )


if __name__ == "__main__":
    main()
