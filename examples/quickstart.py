#!/usr/bin/env python
"""Quickstart: analyze and parallelize the paper's Figure 4 loop.

Walks the full pipeline on the smallest possible example:

1. parse + normalize (Figure 4(a) -> 4(b));
2. Phase-1: the Symbolic Value Dictionary of one iteration (Figure 5);
3. Phase-2: the intermittent-monotonicity property of ``ind``;
4. the OpenMP directive a consumer loop earns from that property.
"""

from repro.analysis import AnalysisConfig, analyze_program
from repro.analysis.loopinfo import find_loop_nests
from repro.analysis.normalize import normalize_program
from repro.analysis.phase1 import run_phase1
from repro.lang import parse_program, to_c
from repro.parallelizer import format_report, parallelize

FILL = """
m = 0;
for (j = 0; j < npts; j++) {
    if ((xdos[j] - t) < width)
        ind[m++] = j;
}
"""

# a consumer loop in the style of the paper's Figure 1 (EVSL)
CONSUMER = """
for (j = 0; j < numPlaced; j++) {
    y[ind[j]] = y[ind[j]] + gamma * exp(-(xdos[ind[j]] - t) * (xdos[ind[j]] - t));
}
"""


def main() -> None:
    print("=== 1. Cetus-normalized loop (paper Figure 4(b)) ===")
    prog = normalize_program(parse_program(FILL))
    print(to_c(prog))

    print("=== 2. Phase-1 SVD of the final statement (paper Figure 5) ===")
    nest = find_loop_nests(prog)[0]
    p1 = run_phase1(nest, {})
    print(f"SVD_stn = {p1.svd}")
    print()

    print("=== 3. Phase-2 property ===")
    res = analyze_program(FILL, AnalysisConfig.new_algorithm())
    for prop in res.properties.all_properties():
        print(f"  {prop}   (annotation {prop.annotation()})")
    print()

    print("=== 4. Parallelizing a consumer of ind ===")
    result = parallelize(FILL + CONSUMER, AnalysisConfig.new_algorithm())
    print(format_report(result))
    print()
    print("=== Annotated output program ===")
    print(result.to_c())


if __name__ == "__main__":
    main()
