#!/usr/bin/env python
"""Print Table 1 (benchmarks, input datasets, serial execution times) and
the Figure 17 pipeline comparison — the paper's summary artifacts."""

from repro.experiments.fig17 import format_fig17
from repro.experiments.table1 import format_table1


def main() -> None:
    print(format_table1())
    print()
    print(format_fig17())


if __name__ == "__main__":
    main()
