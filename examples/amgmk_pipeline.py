#!/usr/bin/env python
"""Full AMGmk pipeline (paper §3.1 / Figures 8-9, 13-15).

Compiles the AMGmk kernel under all three pipelines, validates the
NewAlgo decision by executing the kernel with the dynamic race checker on
a real (small) matrix, and predicts the paper's speedups on MATRIX1-5.
"""


from repro.analysis import AnalysisConfig
from repro.benchmarks import get_benchmark
from repro.experiments.harness import PIPELINES, run_benchmark
from repro.lang.astnodes import For
from repro.parallelizer import format_report, parallelize
from repro.runtime.racecheck import check_loop_races


def main() -> None:
    bench = get_benchmark("AMGmk")

    print("=== Compilation under the three pipelines ===")
    for name, cfg in PIPELINES.items():
        result = parallelize(bench.source, cfg)
        print(format_report(result))
        print()

    print("=== Dynamic race validation of the NewAlgo decision ===")
    result = parallelize(bench.source, AnalysisConfig.new_algorithm())
    kernel_loop = [
        s
        for s in result.program.stmts
        if isinstance(s, For) and result.decisions[s.loop_id].parallel
    ][0]
    env = bench.small_env()
    rep = check_loop_races(result.program, kernel_loop, env)
    print(f"parallel loop over '{rep.loop_index}': {rep.iterations} iterations, "
          f"{'NO conflicts' if rep.clean else 'CONFLICTS: ' + str(rep.conflicts)}")
    print()

    print("=== Predicted performance (paper Figures 13/14) ===")
    print(f"{'dataset':<10} {'serial':>8}" + "".join(f"  {p:>2} cores" for p in (4, 8, 16)))
    for ds in bench.datasets:
        runs = [run_benchmark(bench, ds, "Cetus+NewAlgo", p) for p in (4, 8, 16)]
        base = runs[0].serial_time
        cells = "".join(f"  {r.speedup:>7.2f}x" for r in runs)
        print(f"{ds:<10} {base:>7.2f}s{cells}")
    print()
    print("vs classical Cetus (inner-loop fork-join, the Figure 13 anomaly):")
    for ds in bench.datasets[:2]:
        w = run_benchmark(bench, ds, "Cetus", 16)
        n = run_benchmark(bench, ds, "Cetus+NewAlgo", 16)
        print(
            f"  {ds}: classical {w.parallel_time:.2f}s ({w.speedup:.2f}x) vs "
            f"NewAlgo {n.parallel_time:.2f}s ({n.speedup:.2f}x) -> "
            f"improvement {w.parallel_time / n.parallel_time:.1f}x"
        )


if __name__ == "__main__":
    main()
